// Parallel sweep running: fan a vector of experiment points across a
// thread pool.
//
// Every figure bench is a load x workload x protocol (x scenario) sweep;
// each point is an independent simulation with its own Network and
// EventLoop, so points parallelize perfectly. The contract that makes the
// parallelism trustworthy: results are byte-identical whatever the thread
// count (including 1), because each point's outcome depends only on its
// own ExperimentConfig — there is no shared mutable state between runs
// (the workload singletons' caches are built under a once_flag), and
// results are collected into the input order, not completion order.
//
// Seed derivation rule: when `deriveSeeds` is set, point i runs with
//   seed_i = deriveSweepSeed(baseSeed, i)
// (a SplitMix64 finalizer over baseSeed + (i+1)*golden-gamma). Seeds are a
// pure function of (baseSeed, index): re-running a sweep, resuming a
// prefix, or running points one at a time by hand reproduces the same
// experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/rpc_experiment.h"

namespace homa {

/// Deterministic per-point seed: SplitMix64 finalizer over
/// base + (index+1) * 0x9E3779B97F4A7C15 (the golden-ratio gamma).
uint64_t deriveSweepSeed(uint64_t base, uint64_t index);

struct SweepOptions {
    /// Worker threads; <= 0 means std::thread::hardware_concurrency().
    int threads = 0;
    /// Overwrite each point's traffic.seed with deriveSweepSeed(baseSeed, i).
    bool deriveSeeds = false;
    uint64_t baseSeed = 99;
    /// > 0: override every point's parallel.threads, composing point-level
    /// fan-out with the shard-level parallel engine (sim/parallel.h). Total
    /// concurrency is then up to threads * simThreads; results stay
    /// byte-identical either way, so the split is purely a throughput knob
    /// (many small points: sweep threads; few huge points: sim threads).
    int simThreads = 0;
};

struct SweepOutcome {
    /// results[i] corresponds to points[i], regardless of thread count.
    std::vector<ExperimentResult> results;
    double wallSeconds = 0;
    int threadsUsed = 1;
};

/// One machine's slice of a distributed sweep: shard `index` of `count`.
///
/// The point-to-shard assignment is deterministic and positional — shard
/// k owns every global point index i with `i % count == k` (round-robin,
/// so a grid whose expensive points cluster at one end still spreads
/// them across shards). Because the assignment and the per-point seed
/// derivation are both pure functions of the global index, a sharded run
/// executes byte-for-byte the same experiments a single-machine run
/// would, whatever the shard count.
struct ShardSpec {
    int index = 0;  ///< 0-based shard id, in [0, count).
    int count = 1;  ///< Total number of shards (>= 1).
};

/// Returns nullptr when `s` is valid, else a static string describing
/// the problem (count < 1, or index outside [0, count)).
const char* validateShardSpec(const ShardSpec& s);

/// Parses "i/N" (e.g. "0/3") into a ShardSpec; returns false — leaving
/// `out` untouched — on malformed text or a spec validateShardSpec
/// rejects. The grammar matches the benches' --shard=i/N flag.
bool parseShardSpec(const std::string& text, ShardSpec& out);

/// True when shard `s` owns global point index `pointIndex`
/// (pointIndex % count == index).
bool shardOwns(const ShardSpec& s, uint64_t pointIndex);

/// The ascending global indices shard `s` owns out of `totalPoints`.
std::vector<uint64_t> shardPointIndices(const ShardSpec& s,
                                        uint64_t totalPoints);

/// The slice of a sweep one shard ran. `indices[k]` is the global point
/// index of `results[k]`/`seeds[k]`; indices are ascending. A shard of a
/// larger grid than it has points (count > totalPoints) is legitimately
/// empty.
struct ShardOutcome {
    std::vector<uint64_t> indices;          ///< global indices, ascending
    std::vector<ExperimentResult> results;  ///< results[k] ~ indices[k]
    std::vector<uint64_t> seeds;            ///< effective traffic.seed per run
    uint64_t totalPoints = 0;               ///< size of the full grid
    double wallSeconds = 0;
    int threadsUsed = 1;
};

/// Fans a vector of experiment points across a thread pool; results are
/// byte-identical whatever the thread count (see the file comment for the
/// contract that makes this trustworthy).
class SweepRunner {
public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

    /// Run every point; results[i] always corresponds to points[i].
    SweepOutcome run(std::vector<ExperimentConfig> points) const;

    /// Run only the points `shard` owns, with the exact per-point seeds
    /// the full grid would use: seed derivation (when
    /// SweepOptions::deriveSeeds is set) happens over *global* indices
    /// before the slice is taken, so `results[k]` is byte-identical to
    /// `run(points).results[indices[k]]`. Merging every shard's outcome
    /// in index order therefore reproduces the single-machine sweep
    /// bit-for-bit (see sweep_shard.h for the file format + merge).
    ShardOutcome runShard(std::vector<ExperimentConfig> points,
                          const ShardSpec& shard) const;

private:
    SweepOptions opts_;
};

/// RPC-harness sweep: the serving/dag/echo sibling of SweepRunner::run,
/// with the same contract — results[i] corresponds to points[i] whatever
/// the thread count, and SweepOptions::deriveSeeds overwrites point i's
/// `seed` with deriveSweepSeed(baseSeed, i) so a width-N sweep runs the
/// exact experiments N width-1 sweeps would.
struct RpcSweepOutcome {
    std::vector<RpcExperimentResult> results;
    double wallSeconds = 0;
    int threadsUsed = 1;
};

RpcSweepOutcome runRpcSweep(std::vector<RpcExperimentConfig> points,
                            const SweepOptions& opts = {});

/// Canonical serialization of everything an ExperimentResult measures
/// (counts, per-decile slowdown rows, utilization, queues, drops), with
/// doubles printed as hex floats. Two results are byte-identical iff their
/// fingerprints are equal — the determinism tests and the sweep bench diff
/// these across runs and thread counts.
std::string resultFingerprint(const ExperimentResult& r);

}  // namespace homa
