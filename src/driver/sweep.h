// Parallel sweep running: fan a vector of experiment points across a
// thread pool.
//
// Every figure bench is a load x workload x protocol (x scenario) sweep;
// each point is an independent simulation with its own Network and
// EventLoop, so points parallelize perfectly. The contract that makes the
// parallelism trustworthy: results are byte-identical whatever the thread
// count (including 1), because each point's outcome depends only on its
// own ExperimentConfig — there is no shared mutable state between runs
// (the workload singletons' caches are built under a once_flag), and
// results are collected into the input order, not completion order.
//
// Seed derivation rule: when `deriveSeeds` is set, point i runs with
//   seed_i = deriveSweepSeed(baseSeed, i)
// (a SplitMix64 finalizer over baseSeed + (i+1)*golden-gamma). Seeds are a
// pure function of (baseSeed, index): re-running a sweep, resuming a
// prefix, or running points one at a time by hand reproduces the same
// experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment.h"

namespace homa {

/// Deterministic per-point seed: SplitMix64 finalizer over
/// base + (index+1) * 0x9E3779B97F4A7C15 (the golden-ratio gamma).
uint64_t deriveSweepSeed(uint64_t base, uint64_t index);

struct SweepOptions {
    /// Worker threads; <= 0 means std::thread::hardware_concurrency().
    int threads = 0;
    /// Overwrite each point's traffic.seed with deriveSweepSeed(baseSeed, i).
    bool deriveSeeds = false;
    uint64_t baseSeed = 99;
};

struct SweepOutcome {
    /// results[i] corresponds to points[i], regardless of thread count.
    std::vector<ExperimentResult> results;
    double wallSeconds = 0;
    int threadsUsed = 1;
};

/// Fans a vector of experiment points across a thread pool; results are
/// byte-identical whatever the thread count (see the file comment for the
/// contract that makes this trustworthy).
class SweepRunner {
public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

    /// Run every point; results[i] always corresponds to points[i].
    SweepOutcome run(std::vector<ExperimentConfig> points) const;

private:
    SweepOptions opts_;
};

/// Canonical serialization of everything an ExperimentResult measures
/// (counts, per-decile slowdown rows, utilization, queues, drops), with
/// doubles printed as hex floats. Two results are byte-identical iff their
/// fingerprints are equal — the determinism tests and the sweep bench diff
/// these across runs and thread counts.
std::string resultFingerprint(const ExperimentResult& r);

}  // namespace homa
