#include "driver/rpc_experiment.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

namespace homa {

namespace {

// Fan-out/fan-in trees as real RPCs: the coordinator (client) calls its
// stage-1 workers; each worker's *deferred* response fires only after its
// own child RPCs complete (RpcEndpoint::setAsyncHandler), so retries,
// incast marks, and at-least-once re-execution all apply per edge. The
// harness orchestrates centrally: it samples each tree up front, issues
// every call itself, and maps request RpcIds back to tree nodes.
RpcExperimentResult runRpcDagExperiment(const RpcExperimentConfig& cfg) {
    assert(validateDagConfig(cfg.dag) == nullptr);
    const SizeDistribution& dist = workload(cfg.workload);

    NetworkConfig netCfg = cfg.net;
    if (!netCfg.switchQdisc) netCfg.switchQdisc = switchQdiscFor(cfg.proto);
    Network net(netCfg, makeTransportFactory(cfg.proto, netCfg, &dist));
    Oracle oracle(netCfg);

    const int servers = net.hostCount() - cfg.clients;
    assert(servers >= (cfg.dag.depth >= 2 ? 2 : 1));

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
    }

    RpcExperimentResult result;
    // No slowdown tracker: per-edge RPCs are not echoes, so the echo
    // oracle has no meaningful denominator — `dag` carries the metrics.
    const Time windowStart = static_cast<Time>(
        cfg.warmupFraction * static_cast<double>(cfg.stop));
    result.perClient = std::make_unique<ClosedLoopTracker>(
        cfg.clients, windowStart, cfg.stop);
    result.dag = std::make_unique<DagTracker>(cfg.clients, windowStart,
                                              cfg.stop);

    Rng master(cfg.seed);
    std::vector<Rng> rngs;
    for (int c = 0; c < cfg.clients; c++) rngs.push_back(master.fork());
    std::vector<OnOffModulator> mods;
    if (cfg.onOff.enabled) {
        mods.reserve(cfg.clients);
        for (int c = 0; c < cfg.clients; c++) {
            mods.emplace_back(cfg.onOff, /*start=*/0, master.next());
        }
    }

    struct NodeState {
        RpcEndpoint::Responder respond;  // deferred parent answer
        int pending = 0;                 // unanswered children
        bool issued = false;             // child RPCs already sent
    };
    struct TreeRun {
        DagTreeSpec spec;
        std::vector<NodeState> state;
        std::vector<RpcId> rpcIds;
        int client = 0;
        Time issued = 0;
        bool inWindow = false;
        int64_t bytes = 0;
    };
    std::unordered_map<uint64_t, TreeRun> trees;
    std::unordered_map<RpcId, std::pair<uint64_t, int>> byRpc;
    uint64_t nextTree = 1;
    uint64_t issuedInWindow = 0;
    uint64_t completedInWindow = 0;

    const DagCostFn cost = dagOracleCost(net, oracle);
    // Node hosts come from the server pool, never the parent's own host
    // (siblings may repeat — that repetition *is* the incast).
    auto pickChild = [&](HostId parent, Rng& rng) -> HostId {
        if (parent < cfg.clients) {
            return static_cast<HostId>(cfg.clients + rng.below(servers));
        }
        return static_cast<HostId>(
            cfg.clients + uniformHostExcept(servers, parent - cfg.clients, rng));
    };

    std::function<void(uint64_t, int)> callNode;  // issue node's request RPC
    std::function<void(int)> issueGated;

    auto completeTree = [&](uint64_t treeId, TreeRun& t) {
        const Time now = net.loop().now();
        const Duration elapsed = now - t.issued;
        result.dag->record(t.client, static_cast<int>(t.spec.nodes.size()) - 1,
                           t.bytes, elapsed,
                           dagTreeIdeal(t.spec, cfg.dag.requestBytes, cost),
                           now);
        result.perClient->record(t.client, t.bytes, elapsed, now);
        if (t.inWindow) completedInWindow++;
        const int c = t.client;
        for (RpcId id : t.rpcIds) byRpc.erase(id);
        trees.erase(treeId);
        if (net.loop().now() < cfg.stop) {
            net.loop().after(1, [&, c] { issueGated(c); });
        }
    };

    auto onChildDone = [&](uint64_t treeId, int node) {
        const auto it = trees.find(treeId);
        assert(it != trees.end());
        TreeRun& t = it->second;
        const int parent = t.spec.nodes[node].parent;
        NodeState& ps = t.state[parent];
        assert(ps.pending > 0);
        if (--ps.pending > 0) return;
        if (parent == 0) {
            completeTree(treeId, t);
        } else if (ps.respond) {
            ps.respond(t.spec.nodes[parent].respBytes);
        }
    };

    callNode = [&](uint64_t treeId, int node) {
        TreeRun& t = trees[treeId];
        const DagNodeSpec& n = t.spec.nodes[node];
        const HostId parentHost = t.spec.nodes[n.parent].host;
        const RpcId id = endpoints[parentHost]->call(
            n.host, cfg.dag.requestBytes,
            [&, treeId, node](RpcId, uint32_t, uint32_t, Duration) {
                onChildDone(treeId, node);
            });
        t.rpcIds.push_back(id);
        byRpc.emplace(id, std::make_pair(treeId, node));
    };

    // Every server runs the same deferred handler: leaves answer at once;
    // internal nodes fan out and answer when their last child returns.
    for (HostId h = cfg.clients; h < net.hostCount(); h++) {
        endpoints[h]->setAsyncHandler(
            [&](const Message& req, RpcEndpoint::Responder respond) {
                const auto it = byRpc.find(req.id);
                if (it == byRpc.end()) {
                    respond(1);  // stale retry of an already-completed tree
                    return;
                }
                const auto [treeId, node] = it->second;
                TreeRun& t = trees[treeId];
                const DagNodeSpec& n = t.spec.nodes[node];
                if (n.childCount == 0) {
                    respond(n.respBytes);
                    return;
                }
                NodeState& ns = t.state[node];
                ns.respond = std::move(respond);
                if (!ns.issued) {
                    ns.issued = true;
                    ns.pending = n.childCount;
                    for (int c = 0; c < n.childCount; c++) {
                        callNode(treeId, n.firstChild + c);
                    }
                } else if (ns.pending == 0) {
                    // Re-executed after the children already finished.
                    ns.respond(n.respBytes);
                }
            });
    }

    auto issueTree = [&](int c) {
        const uint64_t treeId = nextTree++;
        TreeRun t;
        t.client = c;
        t.issued = net.loop().now();
        t.inWindow = t.issued >= windowStart;
        if (t.inWindow) issuedInWindow++;
        t.spec = sampleDagTree(cfg.dag, &dist, rngs[c],
                               static_cast<HostId>(c), pickChild);
        t.bytes = dagTreeBytes(cfg.dag, t.spec);
        t.state.resize(t.spec.nodes.size());
        t.state[0].pending = t.spec.nodes[0].childCount;
        TreeRun& placed = trees.emplace(treeId, std::move(t)).first->second;
        const DagNodeSpec& root = placed.spec.nodes[0];
        for (int i = 0; i < root.childCount; i++) {
            callNode(treeId, root.firstChild + i);
        }
    };
    issueGated = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        if (!mods.empty()) {
            const Time go = mods[c].gate(net.loop().now());
            if (go > net.loop().now()) {
                net.loop().at(go, [&, c] { issueGated(c); });
                return;
            }
        }
        issueTree(c);
    };
    for (int c = 0; c < cfg.clients; c++) {
        for (int w = 0; w < cfg.dag.window; w++) {
            const Duration jitter = static_cast<Duration>(
                rngs[c].uniform() * static_cast<double>(microseconds(5)));
            net.loop().at(jitter, [&, c] { issueGated(c); });
        }
    }

    // Single-shard (see RpcExperimentConfig::parallel); equivalent to
    // net.loop().runUntil, routed through the engine entry for uniformity.
    runNetworkUntil(net, cfg.stop + cfg.drainGrace);

    result.issued = issuedInWindow;
    result.completed = completedInWindow;
    for (const auto& ep : endpoints) {
        result.retries += ep->stats().retries;
        result.reexecutions += ep->stats().reexecutions;
    }
    result.keptUp = issuedInWindow > 0 &&
                    static_cast<double>(completedInWindow) >=
                        0.99 * static_cast<double>(issuedInWindow);
    return result;
}

}  // namespace

RpcExperimentResult runRpcExperiment(const RpcExperimentConfig& cfg) {
    if (cfg.dagMode) return runRpcDagExperiment(cfg);
    const SizeDistribution& dist = workload(cfg.workload);

    NetworkConfig netCfg = cfg.net;
    if (!netCfg.switchQdisc) netCfg.switchQdisc = switchQdiscFor(cfg.proto);
    Network net(netCfg, makeTransportFactory(cfg.proto, netCfg, &dist));
    Oracle oracle(netCfg);

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
    }

    RpcExperimentResult result;
    result.slowdown = std::make_unique<SlowdownTracker>(dist, oracle.echoRpcFn());

    const Time windowStart = static_cast<Time>(
        cfg.warmupFraction * static_cast<double>(cfg.stop));

    // Each client's uplink carries `load` of its bandwidth in requests (and
    // symmetric responses on its downlink), matching §5.1's calibration.
    const double psPerByte = static_cast<double>(netCfg.hostLink.psPerByte);
    const Duration meanGap = static_cast<Duration>(
        std::llround(dist.meanWireBytes() * psPerByte / cfg.load));

    const int servers = net.hostCount() - cfg.clients;
    assert(servers > 0);
    const bool closedLoop = cfg.closedLoopWindow > 0;
    Rng master(cfg.seed);
    uint64_t issuedInWindow = 0;
    uint64_t completedInWindow = 0;

    struct ClientState {
        Rng rng;
        explicit ClientState(Rng r) : rng(r) {}
    };
    std::vector<ClientState> clients;
    for (int c = 0; c < cfg.clients; c++) clients.emplace_back(master.fork());
    // Modulator seeds draw from the master stream after the client forks,
    // so enabling ON-OFF never perturbs the per-client RPC streams.
    std::vector<OnOffModulator> mods;
    if (cfg.onOff.enabled) {
        mods.reserve(cfg.clients);
        for (int c = 0; c < cfg.clients; c++) {
            mods.emplace_back(cfg.onOff, /*start=*/0, master.next());
        }
    }
    result.perClient = std::make_unique<ClosedLoopTracker>(
        cfg.clients, windowStart, cfg.stop);

    auto thinkGap = [&](ClientState& st) -> Duration {
        if (cfg.thinkTime <= 0) return 1;
        return exponentialDuration(st.rng, toSeconds(cfg.thinkTime));
    };
    // Open loop + ON-OFF: Poisson on the client's ON-time clock at rate
    // base/duty, mapped to wall clock by the modulator.
    auto onClockDelay = [&](ClientState& st) {
        return exponentialDuration(
            st.rng, toSeconds(meanGap) * cfg.onOff.dutyCycle());
    };

    std::function<void(int)> issueNext;  // issue one RPC now (past gating)
    // Closed-loop issue point: waits out an OFF period before issuing.
    std::function<void(int)> issueGated = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        if (!mods.empty()) {
            const Time go = mods[c].gate(net.loop().now());
            if (go > net.loop().now()) {
                net.loop().at(go, [&, c] { issueGated(c); });
                return;
            }
        }
        issueNext(c);
    };
    issueNext = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        ClientState& st = clients[c];
        const uint32_t size = dist.sample(st.rng);
        const HostId server =
            static_cast<HostId>(cfg.clients + st.rng.below(servers));
        const Time issuedAt = net.loop().now();
        const bool inWindow = issuedAt >= windowStart;
        if (inWindow) issuedInWindow++;
        endpoints[c]->call(
            server, size,
            [&, c, inWindow](RpcId, uint32_t reqSize, uint32_t respSize,
                             Duration elapsed) {
                result.perClient->record(c, reqSize + respSize, elapsed,
                                         net.loop().now());
                if (inWindow) {
                    completedInWindow++;
                    result.slowdown->record(reqSize, elapsed);
                }
                if (closedLoop) {
                    // Refill the freed slot after the think time. (An RPC
                    // abort would leak a slot, but an abort takes ~500 ms
                    // of backed-off retries — beyond these runs.)
                    net.loop().after(thinkGap(clients[c]),
                                     [&, c] { issueGated(c); });
                }
            });
        if (closedLoop) return;  // the response callback drives the loop
        if (!mods.empty()) {
            net.loop().at(mods[c].advance(onClockDelay(st)),
                          [&, c] { issueNext(c); });
            return;
        }
        const Duration gap = exponentialDuration(st.rng, toSeconds(meanGap));
        net.loop().after(gap, [&, c] { issueNext(c); });
    };
    for (int c = 0; c < cfg.clients; c++) {
        if (closedLoop) {
            // Prime the window; a small stagger keeps clients * W calls
            // from firing in lockstep at t=0 (ON-OFF gating then pushes
            // gated slots to each client's first burst).
            for (int w = 0; w < cfg.closedLoopWindow; w++) {
                const Duration jitter = static_cast<Duration>(
                    clients[c].rng.uniform() *
                    static_cast<double>(microseconds(5)));
                net.loop().at(jitter, [&, c] { issueGated(c); });
            }
        } else if (!mods.empty()) {
            net.loop().at(mods[c].advance(onClockDelay(clients[c])),
                          [&, c] { issueNext(c); });
        } else {
            const Duration phase =
                exponentialDuration(clients[c].rng, toSeconds(meanGap));
            net.loop().at(phase, [&, c] { issueNext(c); });
        }
    }

    // Single-shard (see RpcExperimentConfig::parallel); equivalent to
    // net.loop().runUntil, routed through the engine entry for uniformity.
    runNetworkUntil(net, cfg.stop + cfg.drainGrace);

    result.issued = issuedInWindow;
    result.completed = completedInWindow;
    for (const auto& ep : endpoints) {
        result.retries += ep->stats().retries;
        result.reexecutions += ep->stats().reexecutions;
    }
    result.keptUp = issuedInWindow > 0 &&
                    static_cast<double>(completedInWindow) >=
                        0.99 * static_cast<double>(issuedInWindow);
    return result;
}

IncastResult runIncastExperiment(int concurrent, bool incastControl,
                                 uint32_t responseBytes, int totalRpcs,
                                 uint64_t seed) {
    NetworkConfig netCfg = NetworkConfig::singleRack16();
    ProtocolConfig proto;
    proto.homa.incastControl = incastControl;
    netCfg.switchQdisc = [] {
        // Finite switch buffers so that un-controlled incast actually drops
        // packets (the effect Figure 10 demonstrates). 2 MB per port is
        // representative of a shallow-buffered 10G TOR: it holds ~200
        // un-controlled 10KB responses, or several thousand incast-capped
        // (~320B unscheduled) ones.
        StrictPriorityOptions o;
        o.capBytes = 2 << 20;
        return std::make_unique<StrictPriorityQdisc>(o);
    };
    const SizeDistribution& dist = workload(WorkloadId::W3);  // unused sizes
    Network net(netCfg, makeTransportFactory(proto, netCfg, &dist));

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
        endpoints.back()->setHandler(
            [responseBytes](const Message&) { return responseBytes; });
    }
    // The experiment *creates* the incast deliberately; let the mechanism,
    // not the client-side cap, decide (threshold stays at the default 25).

    if (totalRpcs <= 0) totalRpcs = std::max(4 * concurrent, 2000);

    Rng rng(seed);
    IncastResult result;
    int issued = 0;
    Time firstIssue = -1, lastResponse = 0;
    int64_t receivedBytes = 0;

    std::function<void()> issueOne = [&] {
        if (issued >= totalRpcs) return;
        issued++;
        const HostId server = static_cast<HostId>(1 + rng.below(15));
        if (firstIssue < 0) firstIssue = net.loop().now();
        endpoints[0]->call(server, 32,
                           [&](RpcId, uint32_t, uint32_t respSize, Duration) {
                               receivedBytes += respSize;
                               result.completed++;
                               lastResponse = net.loop().now();
                               issueOne();  // keep `concurrent` outstanding
                           });
    };
    for (int i = 0; i < concurrent; i++) issueOne();

    net.loop().run();

    result.retries = endpoints[0]->stats().retries;
    const Duration elapsed = lastResponse - firstIssue;
    if (elapsed > 0) {
        result.throughputGbps = static_cast<double>(receivedBytes) * 8.0 /
                                (toSeconds(elapsed) * 1e9);
    }
    return result;
}

}  // namespace homa
