#include "driver/rpc_experiment.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace homa {

namespace {

// Multi-tenant serving: tenants issue logical RPCs against replica groups
// through a ReplicaSelector; groups may hedge (re-issue to a second
// replica once an RPC outlives the tenant's observed latency percentile,
// first response wins, loser cancelled). The harness tracks every call's
// lifecycle in the ServingStats ledgers so the invariant tests can prove
// conservation: exactly one response consumed per logical RPC, every
// issued byte consumed, refunded, or declared unresolved at run end.
RpcExperimentResult runRpcServingExperiment(const RpcExperimentConfig& cfg) {
    const ServingConfig& sv = cfg.serving;
    NetworkConfig netCfg = cfg.net;
    if (!netCfg.switchQdisc) netCfg.switchQdisc = switchQdiscFor(cfg.proto);
    // Transport factories key unscheduled-priority cutoffs off one size
    // distribution; use the first tenant's (cutoff tuning, not
    // correctness — every tenant's traffic still flows).
    const SizeDistribution& primaryDist = workload(sv.tenants[0].workload);
    Network net(netCfg, makeTransportFactory(cfg.proto, netCfg, &primaryDist));
    Oracle oracle(netCfg);
    const OracleFn echo = oracle.echoRpcFn();

    const int nTenants = static_cast<int>(sv.tenants.size());
    const int nClients = sv.totalClients();
    const int servers = net.hostCount() - nClients;
    assert(validateServingConfig(sv, net.hostCount()).empty());
    assert(servers >= 1);

    const std::vector<ReplicaGroupConfig> groups = sv.effectiveGroups();
    std::vector<ResolvedGroup> resolved;
    {
        std::string err;
        const bool ok = resolveReplicaGroups(sv, servers, resolved, &err);
        assert(ok);
        (void)ok;
    }

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
    }

    RpcExperimentResult result;
    const Time windowStart = static_cast<Time>(
        cfg.warmupFraction * static_cast<double>(cfg.stop));
    result.perClient = std::make_unique<ClosedLoopTracker>(
        nClients, windowStart, cfg.stop);
    result.tenants = std::make_unique<TenantTracker>(nTenants, windowStart,
                                                     cfg.stop);
    ServingStats& led = result.serving;

    // Per-tenant shape: owned client range, group, selector, arrival rate.
    struct TenantState {
        const SizeDistribution* dist = nullptr;
        int firstClient = 0;
        int groupIdx = 0;
        uint64_t seq = 0;  // logical-RPC sequence; feeds the selector
        // Observed latencies arm the hedge delay (whole run, not
        // window-gated: the hedge needs samples before the window opens).
        Samples latency;  // microseconds
        Duration hedgeDelay = 0;
        int sinceRecalc = 0;
        Duration meanGap = 0;  // open mode
    };
    std::vector<TenantState> ts(static_cast<size_t>(nTenants));
    std::vector<ReplicaSelector> selectors;
    selectors.reserve(static_cast<size_t>(nTenants));
    std::vector<int> clientTenant(static_cast<size_t>(nClients));
    const double psPerByte = static_cast<double>(netCfg.hostLink.psPerByte);
    {
        int nextClient = 0;
        for (int t = 0; t < nTenants; t++) {
            const TenantConfig& tc = sv.tenants[t];
            ts[t].dist = &workload(tc.workload);
            ts[t].firstClient = nextClient;
            ts[t].groupIdx = tenantGroupIndex(sv, tc);
            assert(ts[t].groupIdx >= 0);
            if (tc.mode == ArrivalMode::Open) {
                ts[t].meanGap = static_cast<Duration>(std::llround(
                    ts[t].dist->meanWireBytes() * psPerByte / tc.load));
            }
            selectors.emplace_back(groups[ts[t].groupIdx].policy,
                                   resolved[ts[t].groupIdx].count, cfg.seed, t);
            for (int c = 0; c < tc.clients; c++) clientTenant[nextClient++] = t;
        }
        assert(nextClient == nClients);
    }

    // Outstanding-call depth per server host, fed to power-of-two-choices.
    std::vector<int> depth(static_cast<size_t>(net.hostCount()), 0);

    Rng master(cfg.seed);
    std::vector<Rng> rngs;
    for (int c = 0; c < nClients; c++) rngs.push_back(master.fork());

    // One logical RPC: a primary call plus at most one hedge, first
    // response wins. Callbacks carry (logicalId, slot) by capture, so no
    // reverse map is needed; a cancelled call's callback never fires.
    struct CallSlot {
        RpcId id = 0;
        HostId server = 0;
        bool open = false;  // issued, neither consumed nor cancelled
    };
    struct Logical {
        int tenant = 0;
        int client = 0;
        uint32_t size = 0;
        Time issuedAt = 0;
        bool inWindow = false;
        CallSlot calls[2];  // [0] primary, [1] hedge
        bool hedged = false;
    };
    std::unordered_map<uint64_t, Logical> active;
    uint64_t nextLogical = 1;
    uint64_t issuedInWindow = 0;
    uint64_t completedInWindow = 0;

    auto hedgeArmed = [&](int t) -> bool {
        const ReplicaGroupConfig& g = groups[ts[t].groupIdx];
        return g.hedging() &&
               ts[t].latency.count() >= static_cast<size_t>(g.hedgeMinSamples);
    };
    auto hedgeDelayFor = [&](int t) -> Duration {
        TenantState& s = ts[t];
        const ReplicaGroupConfig& g = groups[s.groupIdx];
        // Recompute the cached percentile every 64 completions: percentile
        // extraction is a sort, too costly per RPC.
        if (s.hedgeDelay == 0 || s.sinceRecalc >= 64) {
            const Duration p = static_cast<Duration>(std::llround(
                s.latency.percentile(g.hedgePercentile) *
                static_cast<double>(microseconds(1))));
            s.hedgeDelay = std::max(g.hedgeFloor, p);
            s.sinceRecalc = 0;
        }
        return s.hedgeDelay;
    };

    std::function<void(int)> issueNext;
    std::function<void(RpcId, uint64_t, int, uint32_t, Duration)> onResponse;

    auto issueCall = [&](uint64_t logicalId, int slot, HostId server) {
        Logical& lg = active[logicalId];
        const RpcId id = endpoints[lg.client]->call(
            server, lg.size,
            [&, logicalId, slot](RpcId rid, uint32_t, uint32_t respSize,
                                 Duration elapsed) {
                onResponse(rid, logicalId, slot, respSize, elapsed);
            });
        lg.calls[slot] = CallSlot{id, server, true};
        depth[server]++;
        led.callsIssued++;
        led.issuedBytes += 2 * static_cast<int64_t>(lg.size);
    };

    auto issueHedge = [&](uint64_t logicalId, uint64_t seq) {
        const auto it = active.find(logicalId);
        if (it == active.end()) return;  // already resolved; stale timer
        Logical& lg = it->second;
        if (lg.hedged) return;
        if (net.loop().now() >= cfg.stop) return;  // no new work in drain
        const int t = lg.tenant;
        const ResolvedGroup& rg = resolved[ts[t].groupIdx];
        const int primaryLocal =
            static_cast<int>(lg.calls[0].server) - nClients - rg.first;
        const int replica = selectors[t].pickHedge(seq, primaryLocal);
        lg.hedged = true;
        led.hedgesIssued++;
        result.tenants->recordHedgeIssued(t);
        issueCall(logicalId, 1,
                  static_cast<HostId>(nClients + rg.first + replica));
    };

    onResponse = [&](RpcId, uint64_t logicalId, int slot, uint32_t respSize,
                     Duration /*callElapsed*/) {
        // The winner cancels the loser synchronously below, so the loser's
        // callback never fires: this is structurally the only response a
        // logical RPC consumes.
        const auto it = active.find(logicalId);
        assert(it != active.end());
        Logical& lg = it->second;
        const int t = lg.tenant;
        const Time now = net.loop().now();
        lg.calls[slot].open = false;
        depth[lg.calls[slot].server]--;
        led.responsesConsumed++;
        led.logicalCompleted++;
        led.consumedBytes += static_cast<int64_t>(lg.size) + respSize;
        if (slot == 1) {
            led.hedgesWon++;
            result.tenants->recordHedgeWon(t);
        }
        // Cancel the losing sibling (primary when the hedge won, hedge
        // when the primary won). A false return means the endpoint had
        // already aborted it after max retries; its bytes then resolve at
        // run end, not here — and the endpoint's own `cancelled` counter
        // stays equal to ours.
        const int other = 1 - slot;
        if (lg.calls[other].open) {
            lg.calls[other].open = false;
            depth[lg.calls[other].server]--;
            if (endpoints[lg.client]->cancel(lg.calls[other].id)) {
                led.refundedBytes += 2 * static_cast<int64_t>(lg.size);
                if (other == 1) {
                    led.hedgesCancelled++;
                    result.tenants->recordHedgeCancelled(t);
                } else {
                    led.primariesCancelled++;
                }
            } else {
                led.unresolvedBytes += 2 * static_cast<int64_t>(lg.size);
                if (other == 1) {
                    led.hedgesFailed++;
                    result.tenants->recordHedgeFailed(t);
                }
            }
        }
        // Latency measured from logical issue (a winning hedge includes
        // the hedge delay — that *is* the tail the tenant observes).
        const Duration logicalElapsed = now - lg.issuedAt;
        const double us = toMicros(logicalElapsed);
        ts[t].latency.add(us);
        ts[t].sinceRecalc++;
        const double best = static_cast<double>(echo(lg.size));
        const double sd =
            best > 0 ? static_cast<double>(logicalElapsed) / best : 0;
        result.tenants->record(t, static_cast<int64_t>(lg.size) + respSize,
                               logicalElapsed, sd, now);
        result.perClient->record(lg.client,
                                 static_cast<int64_t>(lg.size) + respSize,
                                 logicalElapsed, now);
        if (lg.inWindow) completedInWindow++;
        const int client = lg.client;
        const bool closed = sv.tenants[t].mode == ArrivalMode::Closed;
        active.erase(it);
        if (closed) {
            const TenantConfig& tc = sv.tenants[t];
            const Duration gap =
                tc.think <= 0
                    ? 1
                    : exponentialDuration(rngs[client], toSeconds(tc.think));
            net.loop().after(gap, [&, client] { issueNext(client); });
        }
    };

    issueNext = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        const int t = clientTenant[c];
        TenantState& s = ts[t];
        const ResolvedGroup& rg = resolved[s.groupIdx];
        const uint64_t seq = s.seq++;
        const uint32_t size = s.dist->sample(rngs[c]);
        const int replica = selectors[t].pick(seq, [&](int r) {
            return depth[static_cast<size_t>(nClients + rg.first + r)];
        });
        const HostId server = static_cast<HostId>(nClients + rg.first + replica);

        const uint64_t logicalId = nextLogical++;
        Logical lg;
        lg.tenant = t;
        lg.client = c;
        lg.size = size;
        lg.issuedAt = net.loop().now();
        lg.inWindow = lg.issuedAt >= windowStart;
        if (lg.inWindow) issuedInWindow++;
        active.emplace(logicalId, lg);
        led.logicalIssued++;
        issueCall(logicalId, 0, server);
        if (hedgeArmed(t)) {
            net.loop().after(hedgeDelayFor(t),
                             [&, logicalId, seq] { issueHedge(logicalId, seq); });
        }

        if (sv.tenants[t].mode == ArrivalMode::Open) {
            const Duration gap =
                exponentialDuration(rngs[c], toSeconds(s.meanGap));
            net.loop().after(gap, [&, c] { issueNext(c); });
        }
        // Closed mode: onResponse refills the slot.
    };

    for (int c = 0; c < nClients; c++) {
        const TenantConfig& tc = sv.tenants[clientTenant[c]];
        if (tc.mode == ArrivalMode::Closed) {
            // Prime the window; jitter keeps clients * W calls from firing
            // in lockstep at t=0.
            for (int w = 0; w < tc.window; w++) {
                const Duration jitter = static_cast<Duration>(
                    rngs[c].uniform() * static_cast<double>(microseconds(5)));
                net.loop().at(jitter, [&, c] { issueNext(c); });
            }
        } else {
            const Duration phase = exponentialDuration(
                rngs[c], toSeconds(ts[clientTenant[c]].meanGap));
            net.loop().at(phase, [&, c] { issueNext(c); });
        }
    }

    // Single-shard (see RpcExperimentConfig::parallel); equivalent to
    // net.loop().runUntil, routed through the engine entry for uniformity.
    runNetworkUntil(net, cfg.stop + cfg.drainGrace);

    // Close the ledgers: whatever is still active never resolved. Each of
    // its open calls parks its bytes in `unresolvedBytes`; an issued,
    // still-open hedge is a failed hedge (neither won nor cancelled).
    for (auto& [id, lg] : active) {
        (void)id;
        for (int slot = 0; slot < 2; slot++) {
            if (!lg.calls[slot].open) continue;
            led.unresolvedBytes += 2 * static_cast<int64_t>(lg.size);
        }
        if (lg.hedged && lg.calls[1].open) {
            led.hedgesFailed++;
            result.tenants->recordHedgeFailed(lg.tenant);
        }
    }

    result.issued = issuedInWindow;
    result.completed = completedInWindow;
    for (const auto& ep : endpoints) {
        result.retries += ep->stats().retries;
        result.reexecutions += ep->stats().reexecutions;
    }
    result.keptUp = issuedInWindow > 0 &&
                    static_cast<double>(completedInWindow) >=
                        0.99 * static_cast<double>(issuedInWindow);
    return result;
}

// Fan-out/fan-in trees as real RPCs: the coordinator (client) calls its
// stage-1 workers; each worker's *deferred* response fires only after its
// own child RPCs complete (RpcEndpoint::setAsyncHandler), so retries,
// incast marks, and at-least-once re-execution all apply per edge. The
// harness orchestrates centrally: it samples each tree up front, issues
// every call itself, and maps request RpcIds back to tree nodes.
RpcExperimentResult runRpcDagExperiment(const RpcExperimentConfig& cfg) {
    assert(validateDagConfig(cfg.dag) == nullptr);
    const SizeDistribution& dist = workload(cfg.workload);

    NetworkConfig netCfg = cfg.net;
    if (!netCfg.switchQdisc) netCfg.switchQdisc = switchQdiscFor(cfg.proto);
    Network net(netCfg, makeTransportFactory(cfg.proto, netCfg, &dist));
    Oracle oracle(netCfg);

    const int servers = net.hostCount() - cfg.clients;
    assert(servers >= (cfg.dag.depth >= 2 ? 2 : 1));

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
    }

    RpcExperimentResult result;
    // No slowdown tracker: per-edge RPCs are not echoes, so the echo
    // oracle has no meaningful denominator — `dag` carries the metrics.
    const Time windowStart = static_cast<Time>(
        cfg.warmupFraction * static_cast<double>(cfg.stop));
    result.perClient = std::make_unique<ClosedLoopTracker>(
        cfg.clients, windowStart, cfg.stop);
    result.dag = std::make_unique<DagTracker>(cfg.clients, windowStart,
                                              cfg.stop);

    Rng master(cfg.seed);
    std::vector<Rng> rngs;
    for (int c = 0; c < cfg.clients; c++) rngs.push_back(master.fork());
    std::vector<OnOffModulator> mods;
    if (cfg.onOff.enabled) {
        mods.reserve(cfg.clients);
        for (int c = 0; c < cfg.clients; c++) {
            mods.emplace_back(cfg.onOff, /*start=*/0, master.next());
        }
    }

    struct NodeState {
        // Deferred answers, one per parent whose request arrived before
        // the node's subtree completed (join children have two parents).
        std::vector<RpcEndpoint::Responder> responders;
        int pending = 0;     // unanswered children + join children
        bool issued = false;  // child RPCs already sent
    };
    struct TreeRun {
        DagTreeSpec spec;
        std::vector<NodeState> state;
        std::vector<std::vector<int>> joinKids;  // dagJoinChildren(spec)
        std::vector<RpcId> rpcIds;
        int client = 0;
        Time issued = 0;
        bool inWindow = false;
        int64_t bytes = 0;
    };
    std::unordered_map<uint64_t, TreeRun> trees;
    std::unordered_map<RpcId, std::pair<uint64_t, int>> byRpc;
    uint64_t nextTree = 1;
    uint64_t issuedInWindow = 0;
    uint64_t completedInWindow = 0;

    const DagCostFn cost = dagOracleCost(net, oracle);
    // Node hosts come from the server pool, never the parent's own host
    // (siblings may repeat — that repetition *is* the incast).
    auto pickChild = [&](HostId parent, Rng& rng) -> HostId {
        if (parent < cfg.clients) {
            return static_cast<HostId>(cfg.clients + rng.below(servers));
        }
        return static_cast<HostId>(
            cfg.clients + uniformHostExcept(servers, parent - cfg.clients, rng));
    };

    // Issue the request RPC for `node` on behalf of `parent` (its primary
    // parent, or a join edge's extra parent).
    std::function<void(uint64_t, int, int)> callNode;
    std::function<void(int)> issueGated;

    auto completeTree = [&](uint64_t treeId, TreeRun& t) {
        const Time now = net.loop().now();
        const Duration elapsed = now - t.issued;
        result.dag->record(t.client, static_cast<int>(t.spec.nodes.size()) - 1,
                           t.bytes, elapsed,
                           dagTreeIdeal(t.spec, cfg.dag.requestBytes, cost),
                           now);
        result.perClient->record(t.client, t.bytes, elapsed, now);
        if (t.inWindow) completedInWindow++;
        const int c = t.client;
        for (RpcId id : t.rpcIds) byRpc.erase(id);
        trees.erase(treeId);
        if (net.loop().now() < cfg.stop) {
            net.loop().after(1, [&, c] { issueGated(c); });
        }
    };

    // A child's response came back to `parent`: fan-in accounting there.
    auto onChildDone = [&](uint64_t treeId, int parent) {
        const auto it = trees.find(treeId);
        assert(it != trees.end());
        TreeRun& t = it->second;
        NodeState& ps = t.state[parent];
        assert(ps.pending > 0);
        if (--ps.pending > 0) return;
        if (parent == 0) {
            completeTree(treeId, t);
            return;
        }
        // Answer every parent whose request arrived so far (a join
        // child's late second parent is answered straight from the
        // handler's completed-subtree branch).
        for (RpcEndpoint::Responder& r : ps.responders) {
            r(t.spec.nodes[parent].respBytes);
        }
        ps.responders.clear();
    };

    callNode = [&](uint64_t treeId, int node, int parent) {
        TreeRun& t = trees[treeId];
        const DagNodeSpec& n = t.spec.nodes[node];
        const HostId parentHost = t.spec.nodes[parent].host;
        const RpcId id = endpoints[parentHost]->call(
            n.host, cfg.dag.requestBytes,
            [&, treeId, parent](RpcId, uint32_t, uint32_t, Duration) {
                onChildDone(treeId, parent);
            });
        t.rpcIds.push_back(id);
        byRpc.emplace(id, std::make_pair(treeId, node));
    };

    // Every server runs the same deferred handler: leaves answer at once;
    // internal nodes fan out and answer when their last child returns.
    for (HostId h = cfg.clients; h < net.hostCount(); h++) {
        endpoints[h]->setAsyncHandler(
            [&](const Message& req, RpcEndpoint::Responder respond) {
                const auto it = byRpc.find(req.id);
                if (it == byRpc.end()) {
                    respond(1);  // stale retry of an already-completed tree
                    return;
                }
                const auto [treeId, node] = it->second;
                TreeRun& t = trees[treeId];
                const DagNodeSpec& n = t.spec.nodes[node];
                if (n.childCount == 0) {
                    respond(n.respBytes);
                    return;
                }
                NodeState& ns = t.state[node];
                if (!ns.issued) {
                    // First request triggers the single fan-out: own
                    // children plus join children this node is the extra
                    // parent of.
                    ns.issued = true;
                    ns.pending = n.childCount +
                                 static_cast<int>(t.joinKids[node].size());
                    ns.responders.push_back(std::move(respond));
                    for (int c = 0; c < n.childCount; c++) {
                        callNode(treeId, n.firstChild + c, node);
                    }
                    for (int jc : t.joinKids[node]) {
                        callNode(treeId, jc, node);
                    }
                } else if (ns.pending == 0) {
                    // Subtree already complete (a join child's second
                    // parent, or a re-executed retry): answer now.
                    respond(n.respBytes);
                } else {
                    ns.responders.push_back(std::move(respond));
                }
            });
    }

    auto issueTree = [&](int c) {
        const uint64_t treeId = nextTree++;
        TreeRun t;
        t.client = c;
        t.issued = net.loop().now();
        t.inWindow = t.issued >= windowStart;
        if (t.inWindow) issuedInWindow++;
        t.spec = sampleDagTree(cfg.dag, &dist, rngs[c],
                               static_cast<HostId>(c), pickChild);
        t.bytes = dagTreeBytes(cfg.dag, t.spec);
        t.state.resize(t.spec.nodes.size());
        t.joinKids = dagJoinChildren(t.spec);
        // The root never has join children (extra parents sit at stage
        // >= 1), so its pending is its own fan-out alone.
        t.state[0].pending = t.spec.nodes[0].childCount;
        TreeRun& placed = trees.emplace(treeId, std::move(t)).first->second;
        const DagNodeSpec& root = placed.spec.nodes[0];
        for (int i = 0; i < root.childCount; i++) {
            callNode(treeId, root.firstChild + i, 0);
        }
    };
    issueGated = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        if (!mods.empty()) {
            const Time go = mods[c].gate(net.loop().now());
            if (go > net.loop().now()) {
                net.loop().at(go, [&, c] { issueGated(c); });
                return;
            }
        }
        issueTree(c);
    };
    for (int c = 0; c < cfg.clients; c++) {
        for (int w = 0; w < cfg.dag.window; w++) {
            const Duration jitter = static_cast<Duration>(
                rngs[c].uniform() * static_cast<double>(microseconds(5)));
            net.loop().at(jitter, [&, c] { issueGated(c); });
        }
    }

    // Single-shard (see RpcExperimentConfig::parallel); equivalent to
    // net.loop().runUntil, routed through the engine entry for uniformity.
    runNetworkUntil(net, cfg.stop + cfg.drainGrace);

    result.issued = issuedInWindow;
    result.completed = completedInWindow;
    for (const auto& ep : endpoints) {
        result.retries += ep->stats().retries;
        result.reexecutions += ep->stats().reexecutions;
    }
    result.keptUp = issuedInWindow > 0 &&
                    static_cast<double>(completedInWindow) >=
                        0.99 * static_cast<double>(issuedInWindow);
    return result;
}

}  // namespace

RpcExperimentResult runRpcExperiment(const RpcExperimentConfig& cfg) {
    if (cfg.serving.enabled()) return runRpcServingExperiment(cfg);
    if (cfg.dagMode) return runRpcDagExperiment(cfg);
    const SizeDistribution& dist = workload(cfg.workload);

    NetworkConfig netCfg = cfg.net;
    if (!netCfg.switchQdisc) netCfg.switchQdisc = switchQdiscFor(cfg.proto);
    Network net(netCfg, makeTransportFactory(cfg.proto, netCfg, &dist));
    Oracle oracle(netCfg);

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
    }

    RpcExperimentResult result;
    result.slowdown = std::make_unique<SlowdownTracker>(dist, oracle.echoRpcFn());

    const Time windowStart = static_cast<Time>(
        cfg.warmupFraction * static_cast<double>(cfg.stop));

    // Each client's uplink carries `load` of its bandwidth in requests (and
    // symmetric responses on its downlink), matching §5.1's calibration.
    const double psPerByte = static_cast<double>(netCfg.hostLink.psPerByte);
    const Duration meanGap = static_cast<Duration>(
        std::llround(dist.meanWireBytes() * psPerByte / cfg.load));

    const int servers = net.hostCount() - cfg.clients;
    assert(servers > 0);
    const bool closedLoop = cfg.closedLoopWindow > 0;
    Rng master(cfg.seed);
    uint64_t issuedInWindow = 0;
    uint64_t completedInWindow = 0;

    struct ClientState {
        Rng rng;
        explicit ClientState(Rng r) : rng(r) {}
    };
    std::vector<ClientState> clients;
    for (int c = 0; c < cfg.clients; c++) clients.emplace_back(master.fork());
    // Modulator seeds draw from the master stream after the client forks,
    // so enabling ON-OFF never perturbs the per-client RPC streams.
    std::vector<OnOffModulator> mods;
    if (cfg.onOff.enabled) {
        mods.reserve(cfg.clients);
        for (int c = 0; c < cfg.clients; c++) {
            mods.emplace_back(cfg.onOff, /*start=*/0, master.next());
        }
    }
    result.perClient = std::make_unique<ClosedLoopTracker>(
        cfg.clients, windowStart, cfg.stop);

    auto thinkGap = [&](ClientState& st) -> Duration {
        if (cfg.thinkTime <= 0) return 1;
        return exponentialDuration(st.rng, toSeconds(cfg.thinkTime));
    };
    // Open loop + ON-OFF: Poisson on the client's ON-time clock at rate
    // base/duty, mapped to wall clock by the modulator.
    auto onClockDelay = [&](ClientState& st) {
        return exponentialDuration(
            st.rng, toSeconds(meanGap) * cfg.onOff.dutyCycle());
    };

    std::function<void(int)> issueNext;  // issue one RPC now (past gating)
    // Closed-loop issue point: waits out an OFF period before issuing.
    std::function<void(int)> issueGated = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        if (!mods.empty()) {
            const Time go = mods[c].gate(net.loop().now());
            if (go > net.loop().now()) {
                net.loop().at(go, [&, c] { issueGated(c); });
                return;
            }
        }
        issueNext(c);
    };
    issueNext = [&](int c) {
        if (net.loop().now() >= cfg.stop) return;
        ClientState& st = clients[c];
        const uint32_t size = dist.sample(st.rng);
        const HostId server =
            static_cast<HostId>(cfg.clients + st.rng.below(servers));
        const Time issuedAt = net.loop().now();
        const bool inWindow = issuedAt >= windowStart;
        if (inWindow) issuedInWindow++;
        endpoints[c]->call(
            server, size,
            [&, c, inWindow](RpcId, uint32_t reqSize, uint32_t respSize,
                             Duration elapsed) {
                result.perClient->record(c, reqSize + respSize, elapsed,
                                         net.loop().now());
                if (inWindow) {
                    completedInWindow++;
                    result.slowdown->record(reqSize, elapsed);
                }
                if (closedLoop) {
                    // Refill the freed slot after the think time. (An RPC
                    // abort would leak a slot, but an abort takes ~500 ms
                    // of backed-off retries — beyond these runs.)
                    net.loop().after(thinkGap(clients[c]),
                                     [&, c] { issueGated(c); });
                }
            });
        if (closedLoop) return;  // the response callback drives the loop
        if (!mods.empty()) {
            net.loop().at(mods[c].advance(onClockDelay(st)),
                          [&, c] { issueNext(c); });
            return;
        }
        const Duration gap = exponentialDuration(st.rng, toSeconds(meanGap));
        net.loop().after(gap, [&, c] { issueNext(c); });
    };
    for (int c = 0; c < cfg.clients; c++) {
        if (closedLoop) {
            // Prime the window; a small stagger keeps clients * W calls
            // from firing in lockstep at t=0 (ON-OFF gating then pushes
            // gated slots to each client's first burst).
            for (int w = 0; w < cfg.closedLoopWindow; w++) {
                const Duration jitter = static_cast<Duration>(
                    clients[c].rng.uniform() *
                    static_cast<double>(microseconds(5)));
                net.loop().at(jitter, [&, c] { issueGated(c); });
            }
        } else if (!mods.empty()) {
            net.loop().at(mods[c].advance(onClockDelay(clients[c])),
                          [&, c] { issueNext(c); });
        } else {
            const Duration phase =
                exponentialDuration(clients[c].rng, toSeconds(meanGap));
            net.loop().at(phase, [&, c] { issueNext(c); });
        }
    }

    // Single-shard (see RpcExperimentConfig::parallel); equivalent to
    // net.loop().runUntil, routed through the engine entry for uniformity.
    runNetworkUntil(net, cfg.stop + cfg.drainGrace);

    result.issued = issuedInWindow;
    result.completed = completedInWindow;
    for (const auto& ep : endpoints) {
        result.retries += ep->stats().retries;
        result.reexecutions += ep->stats().reexecutions;
    }
    result.keptUp = issuedInWindow > 0 &&
                    static_cast<double>(completedInWindow) >=
                        0.99 * static_cast<double>(issuedInWindow);
    return result;
}

namespace {

void appendNum(std::string& s, const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%a;", key, v);
    s += buf;
}

void appendInt(std::string& s, const char* key, uint64_t v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu;",
                  key, static_cast<unsigned long long>(v));
    s += buf;
}

}  // namespace

std::string resultFingerprint(const RpcExperimentResult& r) {
    std::string s;
    appendInt(s, "issued", r.issued);
    appendInt(s, "completed", r.completed);
    appendInt(s, "retries", r.retries);
    appendInt(s, "reexecutions", r.reexecutions);
    appendInt(s, "keptUp", r.keptUp ? 1 : 0);
    if (r.slowdown) {
        appendNum(s, "p50", r.slowdown->overallPercentile(0.50));
        appendNum(s, "p99", r.slowdown->overallPercentile(0.99));
        for (const SlowdownRow& row : r.slowdown->rows()) {
            appendInt(s, "bucketCount", row.count);
            appendNum(s, "bucketMedian", row.median);
            appendNum(s, "bucketP99", row.p99);
            appendNum(s, "bucketMean", row.mean);
        }
    }
    if (r.perClient) {
        appendInt(s, "clCompleted", r.perClient->totalCompleted());
        appendInt(s, "clMaxClient", r.perClient->maxClientCompleted());
        appendInt(s, "clMinClient", r.perClient->minClientCompleted());
        appendNum(s, "clOpsPerSec", r.perClient->aggregateOpsPerSec());
        appendNum(s, "clGbps", r.perClient->aggregateGbps());
        appendNum(s, "clLatP50", r.perClient->latencyPercentileUs(0.50));
        appendNum(s, "clLatP99", r.perClient->latencyPercentileUs(0.99));
    }
    if (r.dag) {
        appendInt(s, "dagTrees", r.dag->trees());
        appendInt(s, "dagNodes", r.dag->totalNodes());
        appendInt(s, "dagBytes", static_cast<uint64_t>(r.dag->totalBytes()));
        appendInt(s, "dagMaxRoot", r.dag->maxRootTrees());
        appendInt(s, "dagMinRoot", r.dag->minRootTrees());
        appendNum(s, "dagTreesPerSec", r.dag->treesPerSec());
        appendNum(s, "dagCompP50", r.dag->completionPercentileUs(0.50));
        appendNum(s, "dagCompP99", r.dag->completionPercentileUs(0.99));
        appendNum(s, "dagSlowP50", r.dag->slowdownPercentile(0.50));
        appendNum(s, "dagSlowP99", r.dag->slowdownPercentile(0.99));
    }
    if (r.tenants) {
        // Serving block only: non-serving fingerprints are byte-identical
        // to the pre-serving format (the no-tenants golden relies on it).
        appendInt(s, "tnTenants", static_cast<uint64_t>(r.tenants->tenants()));
        for (int t = 0; t < r.tenants->tenants(); t++) {
            appendInt(s, "tnCompleted", r.tenants->completed(t));
            appendNum(s, "tnOpsPerSec", r.tenants->opsPerSec(t));
            appendNum(s, "tnGbps", r.tenants->gbps(t));
            appendNum(s, "tnLatP50", r.tenants->latencyPercentileUs(t, 0.50));
            appendNum(s, "tnLatP99", r.tenants->latencyPercentileUs(t, 0.99));
            appendNum(s, "tnLatMean", r.tenants->latencyMeanUs(t));
            appendNum(s, "tnSlowP50", r.tenants->slowdownPercentile(t, 0.50));
            appendNum(s, "tnSlowP99", r.tenants->slowdownPercentile(t, 0.99));
            const TenantHedgeStats& h = r.tenants->hedges(t);
            appendInt(s, "tnHedgeIssued", h.issued);
            appendInt(s, "tnHedgeWon", h.won);
            appendInt(s, "tnHedgeCancelled", h.cancelled);
            appendInt(s, "tnHedgeFailed", h.failed);
        }
        appendInt(s, "svLogicalIssued", r.serving.logicalIssued);
        appendInt(s, "svLogicalCompleted", r.serving.logicalCompleted);
        appendInt(s, "svCallsIssued", r.serving.callsIssued);
        appendInt(s, "svResponsesConsumed", r.serving.responsesConsumed);
        appendInt(s, "svHedgesIssued", r.serving.hedgesIssued);
        appendInt(s, "svHedgesWon", r.serving.hedgesWon);
        appendInt(s, "svHedgesCancelled", r.serving.hedgesCancelled);
        appendInt(s, "svHedgesFailed", r.serving.hedgesFailed);
        appendInt(s, "svPrimariesCancelled", r.serving.primariesCancelled);
        appendInt(s, "svIssuedBytes",
                  static_cast<uint64_t>(r.serving.issuedBytes));
        appendInt(s, "svConsumedBytes",
                  static_cast<uint64_t>(r.serving.consumedBytes));
        appendInt(s, "svRefundedBytes",
                  static_cast<uint64_t>(r.serving.refundedBytes));
        appendInt(s, "svUnresolvedBytes",
                  static_cast<uint64_t>(r.serving.unresolvedBytes));
    }
    return s;
}

IncastResult runIncastExperiment(int concurrent, bool incastControl,
                                 uint32_t responseBytes, int totalRpcs,
                                 uint64_t seed) {
    NetworkConfig netCfg = NetworkConfig::singleRack16();
    ProtocolConfig proto;
    proto.homa.incastControl = incastControl;
    netCfg.switchQdisc = [] {
        // Finite switch buffers so that un-controlled incast actually drops
        // packets (the effect Figure 10 demonstrates). 2 MB per port is
        // representative of a shallow-buffered 10G TOR: it holds ~200
        // un-controlled 10KB responses, or several thousand incast-capped
        // (~320B unscheduled) ones.
        StrictPriorityOptions o;
        o.capBytes = 2 << 20;
        return std::make_unique<StrictPriorityQdisc>(o);
    };
    const SizeDistribution& dist = workload(WorkloadId::W3);  // unused sizes
    Network net(netCfg, makeTransportFactory(proto, netCfg, &dist));

    std::vector<std::unique_ptr<RpcEndpoint>> endpoints;
    for (HostId h = 0; h < net.hostCount(); h++) {
        endpoints.push_back(std::make_unique<RpcEndpoint>(net, h));
        endpoints.back()->setHandler(
            [responseBytes](const Message&) { return responseBytes; });
    }
    // The experiment *creates* the incast deliberately; let the mechanism,
    // not the client-side cap, decide (threshold stays at the default 25).

    if (totalRpcs <= 0) totalRpcs = std::max(4 * concurrent, 2000);

    Rng rng(seed);
    IncastResult result;
    int issued = 0;
    Time firstIssue = -1, lastResponse = 0;
    int64_t receivedBytes = 0;

    std::function<void()> issueOne = [&] {
        if (issued >= totalRpcs) return;
        issued++;
        const HostId server = static_cast<HostId>(1 + rng.below(15));
        if (firstIssue < 0) firstIssue = net.loop().now();
        endpoints[0]->call(server, 32,
                           [&](RpcId, uint32_t, uint32_t respSize, Duration) {
                               receivedBytes += respSize;
                               result.completed++;
                               lastResponse = net.loop().now();
                               issueOne();  // keep `concurrent` outstanding
                           });
    };
    for (int i = 0; i < concurrent; i++) issueOne();

    net.loop().run();

    result.retries = endpoints[0]->stats().retries;
    const Duration elapsed = lastResponse - firstIssue;
    if (elapsed > 0) {
        result.throughputGbps = static_cast<double>(receivedBytes) * 8.0 /
                                (toSeconds(elapsed) * 1e9);
    }
    return result;
}

}  // namespace homa
