#include "driver/experiment.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace homa {

const char* protocolName(Protocol p) {
    switch (p) {
        case Protocol::Homa: return "Homa";
        case Protocol::Basic: return "Basic";
        case Protocol::PHost: return "pHost";
        case Protocol::Pias: return "PIAS";
        case Protocol::PFabric: return "pFabric";
        case Protocol::Ndp: return "NDP";
        case Protocol::StreamSC: return "Stream-SC";
        case Protocol::StreamMC: return "Stream-MC";
    }
    return "?";
}

TransportFactory makeTransportFactory(const ProtocolConfig& proto,
                                      const NetworkConfig& net,
                                      const SizeDistribution* workload) {
    const SizeDistribution* precompute =
        proto.precomputePriorities ? workload : nullptr;
    switch (proto.kind) {
        case Protocol::Homa:
            return HomaTransport::factory(proto.homa, net, precompute);
        case Protocol::Basic: {
            HomaConfig cfg = basicTransportConfig();
            cfg.rttBytes = proto.homa.rttBytes;
            return HomaTransport::factory(cfg, net, precompute);
        }
        case Protocol::PHost:
            return PHostTransport::factory(proto.phost, net);
        case Protocol::Pias:
            return PiasTransport::factory(proto.pias, net, workload);
        case Protocol::PFabric:
            return PFabricTransport::factory(proto.pfabric, net);
        case Protocol::Ndp:
            return NdpTransport::factory(proto.ndp, net);
        case Protocol::StreamSC: {
            StreamingConfig cfg = proto.streaming;
            cfg.multiConnection = false;
            return StreamingTransport::factory(cfg);
        }
        case Protocol::StreamMC: {
            StreamingConfig cfg = proto.streaming;
            cfg.multiConnection = true;
            return StreamingTransport::factory(cfg);
        }
    }
    assert(false);
    return {};
}

std::function<std::unique_ptr<Qdisc>()> switchQdiscFor(
    const ProtocolConfig& proto) {
    switch (proto.kind) {
        case Protocol::PFabric: {
            const int64_t cap = proto.pfabric.switchBufferBytes;
            return [cap] {
                return std::make_unique<PFabricQdisc>(PFabricOptions{cap});
            };
        }
        case Protocol::Ndp: {
            const int64_t cap = proto.ndp.switchBufferBytes;
            return [cap] {
                StrictPriorityOptions o;
                o.capBytes = cap;
                o.trimOnOverflow = true;
                return std::make_unique<StrictPriorityQdisc>(o);
            };
        }
        case Protocol::Pias: {
            // DCTCP-style ECN marking (the PIAS paper's K for 10 Gbps).
            return [] {
                StrictPriorityOptions o;
                o.ecnThresholdBytes = 78000;
                return std::make_unique<StrictPriorityQdisc>(o);
            };
        }
        default:
            // Homa/Basic/pHost/streams: commodity switch, buffers large
            // enough that these protocols do not drop (Table 1 validates).
            return [] { return std::make_unique<StrictPriorityQdisc>(); };
    }
}

namespace {

uint64_t sumDrops(Network& net, bool trims) {
    uint64_t total = 0;
    auto add = [&](const EgressPort* p) {
        total += trims ? p->qdisc().stats().trimmed : p->qdisc().stats().dropped;
        // Fault-injection losses at switch ports count as switch drops
        // too: a packet mid-wire when the link died, or lost on a
        // degraded link (both zero on healthy fabrics).
        if (!trims) {
            total += p->stats().faultWireDrops + p->stats().faultProbDrops;
        }
    };
    for (const auto* p : net.torDownlinkPorts()) add(p);
    for (const auto* p : net.torUplinkPorts()) add(p);
    for (const auto* p : net.aggrDownlinkPorts()) add(p);
    for (const auto* p : net.aggrUplinkPorts()) add(p);
    for (const auto* p : net.coreDownlinkPorts()) add(p);
    if (!trims) {
        // A dead switch's discarded arrivals and flushed queues as well.
        for (int r = 0; r < net.rackCount(); r++) {
            total += net.tor(r).deadIngressDrops() + net.tor(r).flushDrops();
        }
        for (int a = 0; a < net.aggrCount(); a++) {
            total += net.aggr(a).deadIngressDrops() + net.aggr(a).flushDrops();
        }
        for (int c = 0; c < net.coreCount(); c++) {
            total += net.core(c).deadIngressDrops() + net.core(c).flushDrops();
        }
    }
    return total;
}

/// Mean busy fraction of a port group over the run (1.0 = always on wire).
double meanBusyFraction(const std::vector<const EgressPort*>& ports,
                        Time elapsed) {
    if (ports.empty() || elapsed <= 0) return 0;
    double busy = 0;
    for (const auto* p : ports) {
        busy += static_cast<double>(p->stats().busyTime);
    }
    return busy / (static_cast<double>(elapsed) *
                   static_cast<double>(ports.size()));
}

/// Effective fluid threshold: the scenario's "fluid:" modifier wins over
/// the config knob (mirroring the topo: override); -1 = no fluid path.
int64_t effectiveFluidThreshold(const ExperimentConfig& cfg) {
    return cfg.traffic.scenario.fluidThresholdBytes >= 0
               ? cfg.traffic.scenario.fluidThresholdBytes
               : cfg.fluidThresholdBytes;
}

/// Shards to request from the Network. Closed-loop and DAG scenarios have
/// zero-lookahead feedback (a delivery on the destination's shard refills
/// the source's window at the same instant), the wasted-bandwidth
/// probe samples every host from one event, and the fluid engine keeps
/// its flow set and rate solver on shard 0's loop; those run serially
/// whatever `threads` says. The Network further caps by rack count.
int requestedShards(const ExperimentConfig& cfg) {
    const TrafficPatternKind kind = cfg.traffic.scenario.kind;
    const bool shardable = kind != TrafficPatternKind::ClosedLoop &&
                           kind != TrafficPatternKind::Dag &&
                           !cfg.measureWastedBandwidth &&
                           effectiveFluidThreshold(cfg) < 0;
    return shardable ? std::max(1, cfg.parallel.threads) : 1;
}

}  // namespace

ExperimentResult runExperiment(const ExperimentConfig& cfg) {
    if (cfg.traffic.scenario.serving.enabled()) {
        // Serving scenarios run through runRpcExperiment; silently running
        // the uniform placeholder pattern here would measure nothing the
        // spec asked for.
        std::fprintf(stderr,
                     "runExperiment: serving scenarios (tenants) must run "
                     "through runRpcExperiment\n");
        std::abort();
    }
    const SizeDistribution& dist = workload(cfg.traffic.workload);

    NetworkConfig netCfg = cfg.net;
    if (!cfg.traffic.scenario.topoSpec.empty()) {
        // Scenario-carried topology ("topo:..." modifier), applied over the
        // configured base. The spec was validated at parse time; a failure
        // here means the base config fought the spec — abort loudly rather
        // than run the wrong topology.
        std::string terr;
        if (!parseTopoSpec(cfg.traffic.scenario.topoSpec, netCfg, &terr)) {
            std::fprintf(stderr, "runExperiment: bad topo spec '%s': %s\n",
                         cfg.traffic.scenario.topoSpec.c_str(), terr.c_str());
            std::abort();
        }
    }
    if (!netCfg.switchQdisc) netCfg.switchQdisc = switchQdiscFor(cfg.proto);
    if (cfg.traffic.scenario.ecmpUplinks) {
        netCfg.uplinkPolicy = UplinkPolicy::Ecmp;
    }

    const int64_t fluidThreshold = effectiveFluidThreshold(cfg);
    if (fluidThreshold >= 0 && !cfg.traffic.scenario.faults.empty()) {
        // Fluid flows bypass the switches faults act on; a hybrid fault
        // run would silently break conservation. The spec parser rejects
        // the combination too — reaching here means API-level misuse.
        std::fprintf(stderr,
                     "runExperiment: fluidThresholdBytes does not compose "
                     "with fault injection\n");
        std::abort();
    }

    Network net(netCfg, makeTransportFactory(cfg.proto, netCfg, &dist),
                requestedShards(cfg));
    Oracle oracle(netCfg);
    const int n = net.hostCount();

    // Fluid fast path: long messages become max-min-fair fluid flows on
    // shard 0's loop (fluid runs are always serial, see requestedShards);
    // the capacity reservation hands the packet regime its expected byte
    // share (open-loop Poisson only — closed-loop/dag/trace loads are
    // endogenous, and their fluid capacity stays unscaled).
    std::unique_ptr<FluidEngine> fluidEngine;
    if (fluidThreshold >= 0) {
        const TrafficPatternKind kind = cfg.traffic.scenario.kind;
        const bool openLoop = kind != TrafficPatternKind::ClosedLoop &&
                              kind != TrafficPatternKind::Dag &&
                              kind != TrafficPatternKind::TraceReplay;
        FluidConfig fc;
        fc.thresholdBytes = fluidThreshold;
        if (openLoop && fluidThreshold > 0) {
            fc.reservedFraction =
                cfg.traffic.load *
                dist.byteWeightedCdf(static_cast<double>(fluidThreshold));
        }
        fc.bestOneWay = [&oracle](uint32_t size, bool intraRack) {
            return oracle.bestOneWay(size, intraRack);
        };
        fluidEngine =
            std::make_unique<FluidEngine>(net.loop(), netCfg, std::move(fc));
        net.setMessageInterceptor(
            [eng = fluidEngine.get()](const Message& m) {
                return eng->offer(m);
            });
    }

    // Fault timeline first, right after construction: setup-scheduled
    // events sort before any runtime event at the same instant on their
    // shard's loop (EventLoop ordering contract), so fault transitions
    // apply before same-instant traffic in serial and parallel alike.
    std::unique_ptr<FaultTimeline> faults;
    if (!cfg.traffic.scenario.faults.empty()) {
        faults = std::make_unique<FaultTimeline>(
            net, cfg.traffic.scenario.faults,
            deriveFaultSeed(cfg.traffic.seed));
        faults->schedule();
    }

    ExperimentResult result;
    result.slowdown = std::make_unique<SlowdownTracker>(dist, oracle.oneWayFn());

    const Time genStart = cfg.traffic.start;
    const Time genStop = cfg.traffic.stop;
    const Time windowStart =
        genStart + static_cast<Time>(cfg.warmupFraction *
                                     static_cast<double>(genStop - genStart));
    result.windowStart = windowStart;
    result.windowEnd = genStop;

    // All counters and sample collections are per-host, with cell h only
    // ever touched from host h's shard: creation-side cells are indexed by
    // m.src (the generator emits on the source shard), delivery-side cells
    // by m.dst (transports deliver on the destination shard). Merging in
    // ascending host order afterwards — in the serial engine too — makes
    // every statistic, including floating-point accumulation order, a pure
    // function of the simulated events. The Oracle keeps a mutable
    // memoization cache, so delivery recording gets one per host as well.
    std::vector<uint64_t> inWindowGenerated(n, 0), inWindowDelivered(n, 0);
    std::vector<uint64_t> deliveredTotal(n, 0);
    std::vector<int64_t> generatedBytesAll(n, 0), deliveredBytesAll(n, 0);
    std::vector<Oracle> oracles(static_cast<size_t>(n), Oracle(netCfg));
    std::vector<SlowdownTracker> slowdowns;
    slowdowns.reserve(n);
    for (int h = 0; h < n; h++) slowdowns.emplace_back(dist, oracle.oneWayFn());

    TrafficGenerator gen(net, cfg.traffic, [&](const Message& m) {
        generatedBytesAll[m.src] += m.length;
        // Upper bound matters for dag mode: the tree cascade keeps
        // emitting during the drain, and a message created past genStop
        // can never count as delivered below — without the bound those
        // emissions would deflate keptUp for healthy closed-loop trees.
        if (m.created >= windowStart && m.created < genStop) {
            inWindowGenerated[m.src]++;
        }
    });

    const bool closedLoop =
        cfg.traffic.scenario.kind == TrafficPatternKind::ClosedLoop;
    if (closedLoop) {
        result.closedLoop = std::make_unique<ClosedLoopTracker>(
            net.hostCount(), windowStart, genStop);
    }
    const bool dagMode = cfg.traffic.scenario.kind == TrafficPatternKind::Dag;
    if (dagMode) {
        result.dag = std::make_unique<DagTracker>(
            dagRootCount(cfg.traffic.scenario.dag, net.hostCount()),
            windowStart, genStop);
        gen.setDagCost(dagOracleCost(net, oracle));
        gen.setOnTreeComplete([&result](const DagTreeResult& t) {
            result.dag->record(t.root, t.nodes, t.bytes,
                               t.completed - t.issued, t.ideal, t.completed);
        });
    }

    // One delivery path for both regimes: packet transports invoke this via
    // Network::setDeliveryCallback, the fluid engine invokes the same
    // callable directly — so slowdowns, ledgers, closed-loop windows, and
    // keptUp see fluid deliveries exactly like packet ones.
    Transport::DeliveryCallback onDelivery =
        [&](const Message& m, const DeliveryInfo& info) {
        deliveredTotal[m.dst]++;
        deliveredBytesAll[m.dst] += m.length;
        // Closed loop: every delivery frees a window slot, warm-up and
        // drain included (the loop must keep turning outside the window).
        // (Closed-loop and dag runs are always single-shard, so the
        // cross-host writes inside gen/closedLoop are single-threaded.)
        gen.onDelivered(m);
        if (result.closedLoop) {
            result.closedLoop->record(m.src, m.length,
                                      info.completed - m.created,
                                      info.completed);
        }
        if (m.created < windowStart || m.created >= genStop) return;
        inWindowDelivered[m.dst]++;
        const bool intraRack = net.rackOf(m.src) == net.rackOf(m.dst);
        slowdowns[m.dst].recordWithBest(
            m.length, info.completed - m.created,
            oracles[m.dst].bestOneWay(m.length, intraRack), info.queueingDelay,
            info.preemptionLag);
    };
    net.setDeliveryCallback(onDelivery);
    if (fluidEngine) fluidEngine->setDeliveryCallback(onDelivery);

    WastedBandwidthProbe probe(net);
    if (cfg.measureWastedBandwidth) probe.start(windowStart, genStop);

    // Snapshot port stats at the window edges so utilization and queue
    // stats cover only the measurement window. Snapshots are per-host
    // cells written by one event per shard (a host's downlink port lives
    // on its TOR, i.e. on its own shard; its byte counters likewise), then
    // reduced in host order after the run.
    struct HostSnapshot {
        double downlinkWire = 0;
        std::array<double, kPriorityLevels> prioWire{};
        int64_t backlogBytes = 0;  // generated - delivered so far
    };
    std::vector<HostSnapshot> startSnap(n), endSnap(n);
    auto snapshotShard = [&](int shard, std::vector<HostSnapshot>& out) {
        for (HostId h = 0; h < n; h++) {
            if (net.shardOfHost(h) != shard) continue;
            const auto& st = net.downlink(h).stats();
            out[h].downlinkWire = static_cast<double>(st.wireBytesSent);
            for (int p = 0; p < kPriorityLevels; p++) {
                out[h].prioWire[p] = static_cast<double>(st.bytesByPriority[p]);
            }
            out[h].backlogBytes = generatedBytesAll[h] - deliveredBytesAll[h];
        }
    };
    for (int s = 0; s < net.shardCount(); s++) {
        net.shardLoop(s).at(windowStart,
                            [&snapshotShard, &startSnap, s] {
                                snapshotShard(s, startSnap);
                            });
        net.shardLoop(s).at(genStop, [&snapshotShard, &endSnap, s] {
            snapshotShard(s, endSnap);
        });
    }

    gen.start();
    // Run generation plus drain (windowed lock-step when sharded).
    runNetworkUntil(net, genStop + cfg.drainGrace);

    uint64_t generatedSum = 0, deliveredSum = 0;
    int64_t backlogStart = 0, backlogEnd = 0;
    struct Snapshot {
        double downlinkWire = 0;
        std::array<double, kPriorityLevels> prioWire{};
    };
    Snapshot startTotals, endTotals;
    for (HostId h = 0; h < n; h++) {
        generatedSum += inWindowGenerated[h];
        deliveredSum += inWindowDelivered[h];
        result.deliveredTotal += deliveredTotal[h];
        backlogStart += startSnap[h].backlogBytes;
        backlogEnd += endSnap[h].backlogBytes;
        startTotals.downlinkWire += startSnap[h].downlinkWire;
        endTotals.downlinkWire += endSnap[h].downlinkWire;
        for (int p = 0; p < kPriorityLevels; p++) {
            startTotals.prioWire[p] += startSnap[h].prioWire[p];
            endTotals.prioWire[p] += endSnap[h].prioWire[p];
        }
        result.slowdown->absorb(slowdowns[h]);
    }

    result.generated = generatedSum;
    result.delivered = deliveredSum;
    result.maxOutstanding = gen.maxOutstanding();
    result.wastedBandwidth = probe.wastedFraction();

    const Time window = genStop - windowStart;
    double capacity = 0;
    for (HostId h = 0; h < net.hostCount(); h++) {
        capacity +=
            static_cast<double>(net.downlink(h).bandwidth().bytesIn(window));
    }
    result.downlinkUtilization =
        capacity > 0
            ? (endTotals.downlinkWire - startTotals.downlinkWire) / capacity
            : 0;
    for (int p = 0; p < kPriorityLevels; p++) {
        result.prioUsage[p] =
            capacity > 0
                ? (endTotals.prioWire[p] - startTotals.prioWire[p]) / capacity
                : 0;
    }

    // Queue stats over the whole run (warm-up included; it only lowers the
    // time-weighted means slightly since warm-up load is no higher).
    const Time elapsed = net.loop().now();
    result.torUp = summarizeQueues(net.torUplinkPorts(), elapsed);
    result.aggrDown = summarizeQueues(net.aggrDownlinkPorts(), elapsed);
    result.torDown = summarizeQueues(net.torDownlinkPorts(), elapsed);
    if (netCfg.threeTier()) {
        result.coreSwitches = netCfg.coreSwitches;
        result.aggrUp = summarizeQueues(net.aggrUplinkPorts(), elapsed);
        result.coreDown = summarizeQueues(net.coreDownlinkPorts(), elapsed);
        result.aggrLinkUtilization =
            meanBusyFraction(net.torUplinkPorts(), elapsed);
        result.coreLinkUtilization =
            meanBusyFraction(net.aggrUplinkPorts(), elapsed);
    }
    result.switchDrops = sumDrops(net, false);
    result.switchTrims = sumDrops(net, true);
    if (faults) {
        result.faults = std::make_unique<FaultStats>(faults->collect());
    }
    if (fluidEngine) {
        result.fluid = std::make_unique<FluidStats>(fluidEngine->stats());
    }

    // Kept up = the backlog of undelivered bytes did not grow over the
    // measurement window (beyond heavy-tail noise and in-flight slack),
    // AND the drain eventually delivered what the window generated. The
    // backlog criterion matters: an overloaded run can still drain a small
    // window during a long grace period.
    const double bytesPerSecondPerHost =
        1e12 / static_cast<double>(netCfg.hostLink.psPerByte);
    const double offeredInWindow = static_cast<double>(net.hostCount()) *
                                   bytesPerSecondPerHost * cfg.traffic.load *
                                   toSeconds(window);
    // In-flight bytes legitimately fluctuate by several of the largest
    // message's footprint on short windows, and bytes belonging to
    // messages too large to finish within a quarter-window *cannot* have
    // drained regardless of protocol — exempt both. What remains growing
    // means the protocol fell behind. (Quick-mode windows are shorter than
    // W4/W5's largest messages, so quick capacity numbers are coarse
    // there; HOMA_BENCH_SCALE=full windows make the allowance vanish.)
    const double bigMessageThreshold =
        bytesPerSecondPerHost * toSeconds(window) / 4.0;  // one downlink's
    const double heavyAllowance =
        offeredInWindow * (1.0 - dist.byteWeightedCdf(bigMessageThreshold));
    const double backlogTolerance =
        std::max(0.08 * offeredInWindow,
                 3.0 * static_cast<double>(messageWireBytes(dist.maxSize()))) +
        heavyAllowance;
    // Closed loop and dag bound the backlog by construction (at most
    // window messages/trees per host in flight), and `load` — which the
    // offered-load arithmetic above leans on — is ignored; only the
    // delivery criterion below applies.
    const bool backlogStable =
        closedLoop || dagMode ||
        static_cast<double>(backlogEnd - backlogStart) <= backlogTolerance;
    result.keptUp =
        backlogStable && generatedSum > 0 &&
        static_cast<double>(deliveredSum) >=
            0.99 * static_cast<double>(generatedSum);
    return result;
}

DagCostFn dagOracleCost(Network& net, const Oracle& oracle) {
    return [&net, &oracle](HostId a, HostId b, uint32_t bytes) {
        return oracle.bestOneWay(bytes, net.rackOf(a) == net.rackOf(b));
    };
}

double findMaxLoad(ExperimentConfig base, double startPct, double stepPct,
                   double maxPct) {
    double best = 0;
    for (double pct = startPct; pct <= maxPct + 1e-9; pct += stepPct) {
        base.traffic.load = pct / 100.0;
        ExperimentResult r = runExperiment(base);
        if (r.keptUp) {
            best = pct;
        } else if (best > 0) {
            break;  // already failing; loads only get harder
        }
    }
    return best;
}

BenchScale BenchScale::fromEnv() {
    const char* env = std::getenv("HOMA_BENCH_SCALE");
    if (env != nullptr && std::strcmp(env, "full") == 0) {
        return BenchScale{milliseconds(200), 1};
    }
    return BenchScale{milliseconds(20), 1};
}

}  // namespace homa
