#include "driver/sweep_shard.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace homa {

namespace {

// ----------------------------------------------------------- tiny JSON
// Just enough of RFC 8259 for the shard/manifest files this module
// itself writes: objects, arrays, strings, numbers, booleans, null.
// (tools/bench_compare.cc carries its own copy by design: that tool must
// build with a bare g++, without the homa library.)
struct Json {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json* get(const std::string& key) const {
        const auto it = fields.find(key);
        return it == fields.end() ? nullptr : &it->second;
    }
    double num(const std::string& key, double fallback = 0) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == Number ? v->number : fallback;
    }
    std::string str(const std::string& key) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == String ? v->text : std::string();
    }
    bool boolean_(const std::string& key, bool fallback) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == Bool ? v->boolean : fallback;
    }
};

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    bool parse(Json& out) {
        skipSpace();
        if (!value(out)) return false;
        skipSpace();
        return pos_ == s_.size();
    }

private:
    void skipSpace() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                       s_[pos_])) != 0) {
            pos_++;
        }
    }
    bool literal(const char* word) {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }
    bool value(Json& out) {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object(out);
            case '[': return array(out);
            case '"': out.kind = Json::String; return string(out.text);
            case 't': out.kind = Json::Bool; out.boolean = true;
                      return literal("true");
            case 'f': out.kind = Json::Bool; out.boolean = false;
                      return literal("false");
            case 'n': out.kind = Json::Null; return literal("null");
            default: return number(out);
        }
    }
    bool object(Json& out) {
        out.kind = Json::Object;
        pos_++;  // '{'
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == '}') { pos_++; return true; }
        for (;;) {
            skipSpace();
            std::string key;
            if (!string(key)) return false;
            skipSpace();
            if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
            skipSpace();
            Json v;
            if (!value(v)) return false;
            out.fields.emplace(std::move(key), std::move(v));
            skipSpace();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') { pos_++; continue; }
            if (s_[pos_] == '}') { pos_++; return true; }
            return false;
        }
    }
    bool array(Json& out) {
        out.kind = Json::Array;
        pos_++;  // '['
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == ']') { pos_++; return true; }
        for (;;) {
            skipSpace();
            Json v;
            if (!value(v)) return false;
            out.items.push_back(std::move(v));
            skipSpace();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') { pos_++; continue; }
            if (s_[pos_] == ']') { pos_++; return true; }
            return false;
        }
    }
    bool string(std::string& out) {
        if (pos_ >= s_.size() || s_[pos_] != '"') return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                const char esc = s_[pos_++];
                switch (esc) {
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'r': c = '\r'; break;
                    case 'b': c = '\b'; break;
                    case 'f': c = '\f'; break;
                    case 'u': {
                        // Decode \uXXXX (the writer emits these for
                        // control characters); UTF-8-encode the code
                        // point. No surrogate-pair handling — the
                        // writer never emits any.
                        if (pos_ + 4 > s_.size()) return false;
                        unsigned cp = 0;
                        for (int k = 0; k < 4; k++) {
                            const char h = s_[pos_ + k];
                            cp <<= 4;
                            if (h >= '0' && h <= '9') cp |= h - '0';
                            else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
                            else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
                            else return false;
                        }
                        pos_ += 4;
                        if (cp < 0x80) {
                            out += static_cast<char>(cp);
                        } else if (cp < 0x800) {
                            out += static_cast<char>(0xC0 | (cp >> 6));
                            out += static_cast<char>(0x80 | (cp & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (cp >> 12));
                            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (cp & 0x3F));
                        }
                        continue;
                    }
                    default: c = esc; break;  // '"', '\\', '/'
                }
            }
            out += c;
        }
        if (pos_ >= s_.size()) return false;
        pos_++;  // closing quote
        return true;
    }
    bool number(Json& out) {
        char* end = nullptr;
        out.kind = Json::Number;
        out.number = std::strtod(s_.c_str() + pos_, &end);
        if (end == s_.c_str() + pos_) return false;
        pos_ = static_cast<size_t>(end - s_.c_str());
        return true;
    }

    const std::string& s_;
    size_t pos_ = 0;
};

constexpr const char* kShardFormat = "homa-sweep-shard-v1";
constexpr const char* kManifestFormat = "homa-sweep-manifest-v1";

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// printf-append for *short* fields (numbers, names). Anything of
/// unbounded length (labels, fingerprints) must be appended directly —
/// this truncates at the buffer size.
void appendf(std::string& s, const char* fmt, ...) {
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    s += buf;
}

bool fail(std::string& err, std::string why) {
    err = std::move(why);
    return false;
}

/// Non-negative integer field that may exceed 2^53? Seeds are uint64 and
/// a double cannot hold them exactly, so seeds are serialized as decimal
/// *strings* ("seed": "1234..."); indices and counts stay JSON numbers.
bool parseU64String(const Json& obj, const char* key, uint64_t& out) {
    const std::string text = obj.str(key);
    if (text.empty()) return false;
    char* end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end == text.c_str() + text.size();
}

}  // namespace

std::string sweepFingerprint(const std::vector<ShardPoint>& points) {
    uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
    auto eat = [&h](const std::string& s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;  // FNV prime
        }
    };
    char buf[32];
    for (const ShardPoint& p : points) {
        std::snprintf(buf, sizeof(buf), "%llu=",
                      static_cast<unsigned long long>(p.index));
        eat(buf);
        eat(p.fingerprint);
        eat("\n");
    }
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string writeShardFile(const ShardFile& f,
                           const std::string& extraRawFields) {
    std::string s;
    s += "{\n";
    appendf(s, "  \"format\": \"%s\",\n", kShardFormat);
    s += "  \"sweep\": \"" + jsonEscape(f.sweep) + "\",\n";
    appendf(s, "  \"shard_index\": %d,\n", f.shard.index);
    appendf(s, "  \"shard_count\": %d,\n", f.shard.count);
    appendf(s, "  \"total_points\": %llu,\n",
            static_cast<unsigned long long>(f.totalPoints));
    appendf(s, "  \"base_seed\": \"%llu\",\n",
            static_cast<unsigned long long>(f.baseSeed));
    appendf(s, "  \"derive_seeds\": %s,\n", f.deriveSeeds ? "true" : "false");
    appendf(s, "  \"threads\": %d,\n", f.threads);
    appendf(s, "  \"wall_seconds\": %.6f,\n", f.wallSeconds);
    appendf(s, "  \"serial_wall_seconds\": %.6f,\n", f.serialWallSeconds);
    appendf(s, "  \"identical_across_thread_counts\": %s,\n",
            f.identical ? "true" : "false");
    appendf(s, "  \"sweep_fingerprint\": \"%s\",\n",
            sweepFingerprint(f.points).c_str());
    s += extraRawFields;
    s += "  \"points_detail\": [";
    for (size_t k = 0; k < f.points.size(); k++) {
        const ShardPoint& p = f.points[k];
        s += k == 0 ? "\n" : ",\n";
        appendf(s, "    {\"index\": %llu, \"seed\": \"%llu\", ",
                static_cast<unsigned long long>(p.index),
                static_cast<unsigned long long>(p.seed));
        s += "\"label\": \"" + jsonEscape(p.label) + "\", ";
        s += "\"fingerprint\": \"" + jsonEscape(p.fingerprint) + "\"}";
    }
    s += f.points.empty() ? "]\n" : "\n  ]\n";
    s += "}\n";
    return s;
}

bool parseShardFile(const std::string& json, ShardFile& out,
                    std::string& err) {
    Json doc;
    if (!Parser(json).parse(doc) || doc.kind != Json::Object) {
        return fail(err, "not valid JSON");
    }
    if (doc.str("format") != kShardFormat) {
        return fail(err, "missing or unknown \"format\" (want " +
                             std::string(kShardFormat) + ")");
    }
    ShardFile f;
    f.sweep = doc.str("sweep");
    if (f.sweep.empty()) return fail(err, "missing \"sweep\" name");
    f.shard.index = static_cast<int>(doc.num("shard_index", -1));
    f.shard.count = static_cast<int>(doc.num("shard_count", -1));
    if (const char* why = validateShardSpec(f.shard)) return fail(err, why);
    const double total = doc.num("total_points", 0);
    if (total < 0 || total > static_cast<double>(kMaxSweepPoints)) {
        return fail(err, "total_points out of range (max " +
                             std::to_string(kMaxSweepPoints) + ")");
    }
    f.totalPoints = static_cast<uint64_t>(total);
    if (!parseU64String(doc, "base_seed", f.baseSeed)) {
        return fail(err, "missing or malformed \"base_seed\"");
    }
    f.deriveSeeds = doc.boolean_("derive_seeds", false);
    f.threads = static_cast<int>(doc.num("threads", 1));
    f.wallSeconds = doc.num("wall_seconds", 0);
    f.serialWallSeconds = doc.num("serial_wall_seconds", 0);
    f.identical = doc.boolean_("identical_across_thread_counts", true);

    const Json* points = doc.get("points_detail");
    if (points == nullptr || points->kind != Json::Array) {
        return fail(err, "missing \"points_detail\" array");
    }
    uint64_t prev = 0;
    for (const Json& item : points->items) {
        if (item.kind != Json::Object) {
            return fail(err, "points_detail entry is not an object");
        }
        ShardPoint p;
        const Json* idx = item.get("index");
        if (idx == nullptr || idx->kind != Json::Number || idx->number < 0) {
            return fail(err, "point missing numeric \"index\"");
        }
        p.index = static_cast<uint64_t>(idx->number);
        if (!parseU64String(item, "seed", p.seed)) {
            return fail(err, "point missing \"seed\"");
        }
        p.label = item.str("label");
        p.fingerprint = item.str("fingerprint");
        if (p.fingerprint.empty()) {
            return fail(err, "point missing \"fingerprint\"");
        }
        if (p.index >= f.totalPoints) {
            return fail(err, "point index beyond total_points");
        }
        if (!shardOwns(f.shard, p.index)) {
            return fail(err, "point " + std::to_string(p.index) +
                                 " not owned by shard " +
                                 std::to_string(f.shard.index) + "/" +
                                 std::to_string(f.shard.count));
        }
        if (!f.points.empty() && p.index <= prev) {
            return fail(err, "point indices not strictly ascending");
        }
        prev = p.index;
        f.points.push_back(std::move(p));
    }
    const std::string fp = doc.str("sweep_fingerprint");
    if (!fp.empty() && fp != sweepFingerprint(f.points)) {
        return fail(err, "sweep_fingerprint does not match points_detail "
                         "(file corrupted or hand-edited)");
    }
    out = std::move(f);
    return true;
}

std::string benchCompatExtras(const ShardFile& f) {
    if (f.serialWallSeconds <= 0) return "";
    const double speedup =
        f.wallSeconds > 0 ? f.serialWallSeconds / f.wallSeconds : 0;
    std::string s;
    s += "  \"bench\": \"" + jsonEscape(f.sweep) + "\",\n";
    appendf(s, "  \"points\": %zu,\n", f.points.size());
    appendf(s, "  \"wall_seconds_1_thread\": %.6f,\n", f.serialWallSeconds);
    appendf(s, "  \"wall_seconds_parallel\": %.6f,\n", f.wallSeconds);
    appendf(s, "  \"speedup\": %.3f,\n", speedup);
    appendf(s, "  \"results_identical_across_thread_counts\": %s,\n",
            f.identical ? "true" : "false");
    return s;
}

ShardFile shardFileFromOutcome(const std::string& sweepName,
                               const SweepOptions& opts,
                               const ShardSpec& shard,
                               const ShardOutcome& outcome,
                               const std::vector<std::string>& labels) {
    ShardFile f;
    f.sweep = sweepName;
    f.shard = shard;
    f.totalPoints = outcome.totalPoints;
    f.baseSeed = opts.baseSeed;
    f.deriveSeeds = opts.deriveSeeds;
    f.threads = outcome.threadsUsed;
    f.wallSeconds = outcome.wallSeconds;
    f.points.reserve(outcome.indices.size());
    for (size_t k = 0; k < outcome.indices.size(); k++) {
        ShardPoint p;
        p.index = outcome.indices[k];
        p.seed = outcome.seeds[k];
        if (p.index < labels.size()) p.label = labels[p.index];
        p.fingerprint = resultFingerprint(outcome.results[k]);
        f.points.push_back(std::move(p));
    }
    return f;
}

bool mergeShardFiles(const std::vector<ShardFile>& shards, ShardFile& out,
                     std::string& err) {
    if (shards.empty()) return fail(err, "no shard files to merge");
    // Re-validate headers before sizing anything off them: parseShardFile
    // enforces these for files, but in-memory callers build ShardFile
    // structs directly.
    for (const ShardFile& f : shards) {
        if (const char* why = validateShardSpec(f.shard)) {
            return fail(err, why);
        }
        if (f.totalPoints > kMaxSweepPoints) {
            return fail(err, "total_points out of range (max " +
                                 std::to_string(kMaxSweepPoints) + ")");
        }
    }
    const ShardFile& first = shards[0];
    ShardFile merged;
    merged.sweep = first.sweep;
    merged.shard = {0, 1};
    merged.totalPoints = first.totalPoints;
    merged.baseSeed = first.baseSeed;
    merged.deriveSeeds = first.deriveSeeds;
    merged.threads = 0;
    merged.serialWallSeconds = 0;
    merged.identical = true;

    std::vector<bool> shardSeen(static_cast<size_t>(first.shard.count),
                                false);
    std::vector<const ShardPoint*> slots(merged.totalPoints, nullptr);
    for (const ShardFile& f : shards) {
        if (f.sweep != merged.sweep) {
            return fail(err, "sweep name mismatch: \"" + f.sweep +
                                 "\" vs \"" + merged.sweep + "\"");
        }
        if (f.totalPoints != merged.totalPoints) {
            return fail(err, "total_points mismatch across shards");
        }
        if (f.baseSeed != merged.baseSeed ||
            f.deriveSeeds != merged.deriveSeeds) {
            return fail(err, "seed rule (base_seed/derive_seeds) mismatch "
                             "across shards");
        }
        if (f.shard.count != first.shard.count) {
            return fail(err, "shard_count mismatch: " +
                                 std::to_string(f.shard.count) + " vs " +
                                 std::to_string(first.shard.count));
        }
        if (shardSeen[static_cast<size_t>(f.shard.index)]) {
            return fail(err, "overlapping shards: shard " +
                                 std::to_string(f.shard.index) +
                                 " appears more than once");
        }
        shardSeen[static_cast<size_t>(f.shard.index)] = true;
        for (const ShardPoint& p : f.points) {
            // parseShardFile enforces ownership and range; guard again
            // for in-memory callers.
            if (p.index >= merged.totalPoints) {
                return fail(err, "point index beyond total_points");
            }
            if (slots[p.index] != nullptr) {
                return fail(err, "overlapping shards: point " +
                                     std::to_string(p.index) +
                                     " provided twice");
            }
            slots[p.index] = &p;
        }
        merged.threads += f.threads;
        merged.wallSeconds = std::max(merged.wallSeconds, f.wallSeconds);
        merged.serialWallSeconds += f.serialWallSeconds;
        merged.identical = merged.identical && f.identical;
    }
    for (int k = 0; k < first.shard.count; k++) {
        if (!shardSeen[static_cast<size_t>(k)]) {
            return fail(err, "incomplete merge: shard " + std::to_string(k) +
                                 "/" + std::to_string(first.shard.count) +
                                 " missing");
        }
    }
    merged.points.reserve(merged.totalPoints);
    for (uint64_t i = 0; i < merged.totalPoints; i++) {
        if (slots[i] == nullptr) {
            return fail(err, "incomplete merge: point " + std::to_string(i) +
                                 " missing");
        }
        merged.points.push_back(*slots[i]);
    }
    out = std::move(merged);
    return true;
}

std::string writeShardManifest(const ShardManifest& m) {
    std::string s;
    s += "{\n";
    appendf(s, "  \"format\": \"%s\",\n", kManifestFormat);
    s += "  \"sweep\": \"" + jsonEscape(m.sweep) + "\",\n";
    appendf(s, "  \"total_points\": %llu,\n",
            static_cast<unsigned long long>(m.totalPoints));
    appendf(s, "  \"shard_count\": %d,\n", m.shardCount);
    appendf(s, "  \"base_seed\": \"%llu\",\n",
            static_cast<unsigned long long>(m.baseSeed));
    appendf(s, "  \"derive_seeds\": %s,\n", m.deriveSeeds ? "true" : "false");
    s += "  \"shards\": [";
    for (int k = 0; k < m.shardCount; k++) {
        s += k == 0 ? "\n" : ",\n";
        appendf(s, "    {\"index\": %d, \"args\": \"--shard=%d/%d\", "
                   "\"points\": [", k, k, m.shardCount);
        const std::vector<uint64_t> owned =
            shardPointIndices({k, m.shardCount}, m.totalPoints);
        for (size_t j = 0; j < owned.size(); j++) {
            appendf(s, "%s%llu", j == 0 ? "" : ", ",
                    static_cast<unsigned long long>(owned[j]));
        }
        s += "]}";
    }
    s += m.shardCount == 0 ? "]\n" : "\n  ]\n";
    s += "}\n";
    return s;
}

bool parseShardManifest(const std::string& json, ShardManifest& out,
                        std::string& err) {
    Json doc;
    if (!Parser(json).parse(doc) || doc.kind != Json::Object) {
        return fail(err, "not valid JSON");
    }
    if (doc.str("format") != kManifestFormat) {
        return fail(err, "missing or unknown \"format\" (want " +
                             std::string(kManifestFormat) + ")");
    }
    ShardManifest m;
    m.sweep = doc.str("sweep");
    if (m.sweep.empty()) return fail(err, "missing \"sweep\" name");
    const double total = doc.num("total_points", 0);
    if (total < 0 || total > static_cast<double>(kMaxSweepPoints)) {
        return fail(err, "total_points out of range (max " +
                             std::to_string(kMaxSweepPoints) + ")");
    }
    m.totalPoints = static_cast<uint64_t>(total);
    m.shardCount = static_cast<int>(doc.num("shard_count", 0));
    if (m.shardCount < 1 || m.shardCount > 1'000'000) {
        return fail(err, "shard_count out of range [1, 1000000]");
    }
    if (!parseU64String(doc, "base_seed", m.baseSeed)) {
        return fail(err, "missing or malformed \"base_seed\"");
    }
    m.deriveSeeds = doc.boolean_("derive_seeds", false);

    // The shards array is derivable from the header; when present it
    // must agree with the positional assignment rule.
    const Json* shards = doc.get("shards");
    if (shards != nullptr) {
        if (shards->kind != Json::Array ||
            shards->items.size() != static_cast<size_t>(m.shardCount)) {
            return fail(err, "shards array size != shard_count");
        }
        for (int k = 0; k < m.shardCount; k++) {
            const Json& entry = shards->items[static_cast<size_t>(k)];
            if (static_cast<int>(entry.num("index", -1)) != k) {
                return fail(err, "shards array not in index order");
            }
            const Json* pts = entry.get("points");
            if (pts == nullptr || pts->kind != Json::Array) {
                return fail(err, "shard entry missing points list");
            }
            const std::vector<uint64_t> owned =
                shardPointIndices({k, m.shardCount}, m.totalPoints);
            if (pts->items.size() != owned.size()) {
                return fail(err, "shard " + std::to_string(k) +
                                     " points list inconsistent with the "
                                     "positional assignment");
            }
            for (size_t j = 0; j < owned.size(); j++) {
                if (pts->items[j].kind != Json::Number ||
                    static_cast<uint64_t>(pts->items[j].number) != owned[j]) {
                    return fail(err, "shard " + std::to_string(k) +
                                         " points list inconsistent with "
                                         "the positional assignment");
                }
            }
        }
    }
    out = std::move(m);
    return true;
}

bool sweepsIdentical(const ShardFile& merged, const ShardFile& reference,
                     std::string& err) {
    if (merged.totalPoints != reference.totalPoints ||
        merged.points.size() != reference.points.size()) {
        return fail(err,
                    "grid mismatch: " + std::to_string(merged.points.size()) +
                        "/" + std::to_string(merged.totalPoints) +
                        " points vs " + std::to_string(reference.points.size()) +
                        "/" + std::to_string(reference.totalPoints));
    }
    std::string lines;
    int divergent = 0;
    constexpr int kMaxReported = 8;
    for (size_t k = 0; k < merged.points.size(); k++) {
        const ShardPoint& a = merged.points[k];
        const ShardPoint& b = reference.points[k];
        if (a.index == b.index && a.seed == b.seed &&
            a.fingerprint == b.fingerprint) {
            continue;
        }
        if (++divergent <= kMaxReported) {
            const std::string& label = a.label.empty() ? b.label : a.label;
            if (!lines.empty()) lines += '\n';
            lines += "point " + std::to_string(a.index) + " (" + label +
                     ") diverges from the reference run";
        }
    }
    if (divergent > 0) {
        if (divergent > kMaxReported) {
            lines += "\n... and " + std::to_string(divergent - kMaxReported) +
                     " more";
        }
        return fail(err, std::move(lines));
    }
    // Defense in depth: with every (index, fingerprint) pair equal the
    // hashes cannot differ.
    if (sweepFingerprint(merged.points) != sweepFingerprint(reference.points)) {
        return fail(err, "sweep fingerprints differ");
    }
    return true;
}

bool readTextFile(const std::string& path, std::string& out) {
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool writeTextFile(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    if (!out) return false;
    out << text;
    return static_cast<bool>(out);
}

bool shardMatchesManifest(const ShardManifest& m, const ShardFile& f,
                          std::string& err) {
    if (f.sweep != m.sweep) {
        return fail(err, "shard sweep \"" + f.sweep +
                             "\" does not match manifest \"" + m.sweep + "\"");
    }
    if (f.totalPoints != m.totalPoints) {
        return fail(err, "shard total_points does not match manifest");
    }
    if (f.shard.count != m.shardCount) {
        return fail(err, "shard count does not match manifest");
    }
    if (f.baseSeed != m.baseSeed || f.deriveSeeds != m.deriveSeeds) {
        return fail(err, "shard seed rule does not match manifest");
    }
    return true;
}

}  // namespace homa
