#include "driver/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <tuple>
#include <utility>

#include "sim/random.h"

namespace homa {

uint64_t deriveSweepSeed(uint64_t base, uint64_t index) {
    return mix64(base + (index + 1) * kGoldenGamma);
}

const char* validateShardSpec(const ShardSpec& s) {
    if (s.count < 1) return "shard count must be >= 1";
    if (s.index < 0 || s.index >= s.count) {
        return "shard index must be in [0, count)";
    }
    return nullptr;
}

bool parseShardSpec(const std::string& text, ShardSpec& out) {
    const size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        return false;
    }
    ShardSpec s;
    char* end = nullptr;
    const std::string idx = text.substr(0, slash);
    const std::string cnt = text.substr(slash + 1);
    const long i = std::strtol(idx.c_str(), &end, 10);
    if (end != idx.c_str() + idx.size()) return false;
    const long n = std::strtol(cnt.c_str(), &end, 10);
    if (end != cnt.c_str() + cnt.size()) return false;
    if (i < 0 || n < 1 || i >= n || n > 1'000'000) return false;
    s.index = static_cast<int>(i);
    s.count = static_cast<int>(n);
    if (validateShardSpec(s) != nullptr) return false;
    out = s;
    return true;
}

bool shardOwns(const ShardSpec& s, uint64_t pointIndex) {
    return pointIndex % static_cast<uint64_t>(s.count) ==
           static_cast<uint64_t>(s.index);
}

std::vector<uint64_t> shardPointIndices(const ShardSpec& s,
                                        uint64_t totalPoints) {
    std::vector<uint64_t> out;
    for (uint64_t i = static_cast<uint64_t>(s.index); i < totalPoints;
         i += static_cast<uint64_t>(s.count)) {
        out.push_back(i);
    }
    return out;
}

namespace {

/// Shared parallel section of run()/runShard(): fan `points` across a
/// pool, collecting results into slots[i] (input order). Returns
/// (threadsUsed, wallSeconds).
std::pair<int, double> fanOut(const std::vector<ExperimentConfig>& points,
                              std::vector<ExperimentResult>& slots,
                              int threads) {
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0) threads = 1;
    }
    threads = std::min<int>(threads, static_cast<int>(points.size()));
    threads = std::max(threads, 1);
    slots.resize(points.size());

    const auto t0 = std::chrono::steady_clock::now();
    // Pre-build the workload caches once, serially: worker threads then
    // only read them (call_once makes the lazy path safe anyway, but this
    // keeps the first point's wall time honest).
    for (const ExperimentConfig& p : points) {
        workload(p.traffic.workload).meanWireBytes();
    }

    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size()) return;
            slots[i] = runExperiment(points[i]);
        }
    };
    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; t++) pool.emplace_back(worker);
        for (auto& t : pool) t.join();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return {threads, wall};
}

}  // namespace

SweepOutcome SweepRunner::run(std::vector<ExperimentConfig> points) const {
    SweepOutcome out;
    if (opts_.deriveSeeds) {
        for (size_t i = 0; i < points.size(); i++) {
            points[i].traffic.seed = deriveSweepSeed(opts_.baseSeed, i);
        }
    }
    if (opts_.simThreads > 0) {
        for (ExperimentConfig& p : points) p.parallel.threads = opts_.simThreads;
    }
    std::tie(out.threadsUsed, out.wallSeconds) =
        fanOut(points, out.results, opts_.threads);
    return out;
}

ShardOutcome SweepRunner::runShard(std::vector<ExperimentConfig> points,
                                   const ShardSpec& shard) const {
    ShardOutcome out;
    out.totalPoints = points.size();
    // Seed derivation over *global* indices, before slicing: point i gets
    // the exact seed it would get in a single-machine run.
    if (opts_.deriveSeeds) {
        for (size_t i = 0; i < points.size(); i++) {
            points[i].traffic.seed = deriveSweepSeed(opts_.baseSeed, i);
        }
    }
    if (opts_.simThreads > 0) {
        for (ExperimentConfig& p : points) p.parallel.threads = opts_.simThreads;
    }
    out.indices = shardPointIndices(shard, points.size());
    std::vector<ExperimentConfig> slice;
    slice.reserve(out.indices.size());
    out.seeds.reserve(out.indices.size());
    for (uint64_t i : out.indices) {
        out.seeds.push_back(points[i].traffic.seed);
        slice.push_back(std::move(points[i]));
    }
    std::tie(out.threadsUsed, out.wallSeconds) =
        fanOut(slice, out.results, opts_.threads);
    return out;
}

RpcSweepOutcome runRpcSweep(std::vector<RpcExperimentConfig> points,
                            const SweepOptions& opts) {
    RpcSweepOutcome out;
    if (opts.deriveSeeds) {
        for (size_t i = 0; i < points.size(); i++) {
            points[i].seed = deriveSweepSeed(opts.baseSeed, i);
        }
    }
    if (opts.simThreads > 0) {
        for (RpcExperimentConfig& p : points) {
            p.parallel.threads = opts.simThreads;
        }
    }
    int threads = opts.threads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0) threads = 1;
    }
    threads = std::min<int>(threads, static_cast<int>(points.size()));
    threads = std::max(threads, 1);
    out.results.resize(points.size());

    const auto t0 = std::chrono::steady_clock::now();
    // Pre-build the workload caches serially (see fanOut): serving points
    // may touch several distributions, one per tenant.
    for (const RpcExperimentConfig& p : points) {
        workload(p.workload).meanWireBytes();
        for (const TenantConfig& t : p.serving.tenants) {
            workload(t.workload).meanWireBytes();
        }
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size()) return;
            out.results[i] = runRpcExperiment(points[i]);
        }
    };
    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; t++) pool.emplace_back(worker);
        for (auto& t : pool) t.join();
    }
    out.threadsUsed = threads;
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return out;
}

namespace {

void appendNum(std::string& s, const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%a;", key, v);
    s += buf;
}

void appendInt(std::string& s, const char* key, uint64_t v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu;",
                  key, static_cast<unsigned long long>(v));
    s += buf;
}

}  // namespace

std::string resultFingerprint(const ExperimentResult& r) {
    std::string s;
    appendInt(s, "generated", r.generated);
    appendInt(s, "delivered", r.delivered);
    appendInt(s, "deliveredTotal", r.deliveredTotal);
    appendInt(s, "windowStart", static_cast<uint64_t>(r.windowStart));
    appendInt(s, "windowEnd", static_cast<uint64_t>(r.windowEnd));
    appendNum(s, "util", r.downlinkUtilization);
    appendNum(s, "wasted", r.wastedBandwidth);
    appendNum(s, "torUpMean", r.torUp.meanBytes);
    appendInt(s, "torUpMax", static_cast<uint64_t>(r.torUp.maxBytes));
    appendNum(s, "aggrDownMean", r.aggrDown.meanBytes);
    appendInt(s, "aggrDownMax", static_cast<uint64_t>(r.aggrDown.maxBytes));
    appendNum(s, "torDownMean", r.torDown.meanBytes);
    appendInt(s, "torDownMax", static_cast<uint64_t>(r.torDown.maxBytes));
    if (r.coreSwitches > 0) {
        // Three-tier block only: two-tier fingerprints stay byte-identical
        // to the pre-core-layer format (the regression goldens rely on it).
        appendInt(s, "coreSwitches", static_cast<uint64_t>(r.coreSwitches));
        appendNum(s, "aggrUpMean", r.aggrUp.meanBytes);
        appendInt(s, "aggrUpMax", static_cast<uint64_t>(r.aggrUp.maxBytes));
        appendNum(s, "coreDownMean", r.coreDown.meanBytes);
        appendInt(s, "coreDownMax", static_cast<uint64_t>(r.coreDown.maxBytes));
        appendNum(s, "aggrLinkUtil", r.aggrLinkUtilization);
        appendNum(s, "coreLinkUtil", r.coreLinkUtilization);
    }
    for (int p = 0; p < kPriorityLevels; p++) {
        appendNum(s, "prio", r.prioUsage[p]);
    }
    appendInt(s, "drops", r.switchDrops);
    appendInt(s, "trims", r.switchTrims);
    appendInt(s, "keptUp", r.keptUp ? 1 : 0);
    if (r.closedLoop) {
        appendInt(s, "clMaxOutstanding", static_cast<uint64_t>(r.maxOutstanding));
        appendInt(s, "clCompleted", r.closedLoop->totalCompleted());
        appendInt(s, "clMaxClient", r.closedLoop->maxClientCompleted());
        appendInt(s, "clMinClient", r.closedLoop->minClientCompleted());
        appendNum(s, "clOpsPerSec", r.closedLoop->aggregateOpsPerSec());
        appendNum(s, "clGbps", r.closedLoop->aggregateGbps());
        appendNum(s, "clLatP50", r.closedLoop->latencyPercentileUs(0.50));
        appendNum(s, "clLatP99", r.closedLoop->latencyPercentileUs(0.99));
    }
    if (r.dag) {
        appendInt(s, "dagMaxOutstanding", static_cast<uint64_t>(r.maxOutstanding));
        appendInt(s, "dagTrees", r.dag->trees());
        appendInt(s, "dagNodes", r.dag->totalNodes());
        appendInt(s, "dagBytes", static_cast<uint64_t>(r.dag->totalBytes()));
        appendInt(s, "dagMaxRoot", r.dag->maxRootTrees());
        appendInt(s, "dagMinRoot", r.dag->minRootTrees());
        appendNum(s, "dagTreesPerSec", r.dag->treesPerSec());
        appendNum(s, "dagCompP50", r.dag->completionPercentileUs(0.50));
        appendNum(s, "dagCompP99", r.dag->completionPercentileUs(0.99));
        appendNum(s, "dagSlowP50", r.dag->slowdownPercentile(0.50));
        appendNum(s, "dagSlowP99", r.dag->slowdownPercentile(0.99));
    }
    if (r.faults) {
        appendInt(s, "faultLinkDown", r.faults->linkDownEvents);
        appendInt(s, "faultLinkUp", r.faults->linkUpEvents);
        appendInt(s, "faultKills", r.faults->switchKills);
        appendInt(s, "faultDegrades", r.faults->degradeEvents);
        appendInt(s, "faultWireDrops", r.faults->wireDrops);
        appendInt(s, "faultProbDrops", r.faults->probDrops);
        appendInt(s, "faultDeadIngress", r.faults->deadIngressDrops);
        appendInt(s, "faultFlushDrops", r.faults->flushDrops);
    }
    if (r.fluid && r.fluid->flows > 0) {
        // Fluid block only when flows were actually admitted: a hybrid run
        // whose threshold exceeds every message (the all-packet extreme)
        // fingerprints byte-identically to a run without the engine — the
        // FluidFidelity goldens rely on it.
        appendInt(s, "fluidThreshold",
                  static_cast<uint64_t>(r.fluid->thresholdBytes));
        appendInt(s, "fluidFlows", r.fluid->flows);
        appendInt(s, "fluidDelivered", r.fluid->delivered);
        appendInt(s, "fluidSolves", r.fluid->solves);
        appendInt(s, "fluidMaxConcurrent", r.fluid->maxConcurrent);
        appendInt(s, "fluidPayload",
                  static_cast<uint64_t>(r.fluid->payloadBytes));
        appendInt(s, "fluidWire", static_cast<uint64_t>(r.fluid->wireBytes));
        appendInt(s, "fluidDeliveredWire",
                  static_cast<uint64_t>(r.fluid->deliveredWireBytes));
        appendNum(s, "fluidSlowP50", r.fluid->slowP50);
        appendNum(s, "fluidSlowP99", r.fluid->slowP99);
        appendNum(s, "fluidSlowMean", r.fluid->slowMean);
    }
    if (r.slowdown) {
        appendNum(s, "p50", r.slowdown->overallPercentile(0.50));
        appendNum(s, "p99", r.slowdown->overallPercentile(0.99));
        for (const SlowdownRow& row : r.slowdown->rows()) {
            appendInt(s, "bucketCount", row.count);
            appendNum(s, "bucketMedian", row.median);
            appendNum(s, "bucketP99", row.p99);
            appendNum(s, "bucketMean", row.mean);
        }
    }
    return s;
}

}  // namespace homa
