// Distributed sweep sharding: serializable partial results + merge.
//
// A sweep sharded with SweepRunner::runShard() runs byte-for-byte the
// same experiments as a single-machine run (global-index seed
// derivation, positional i % count point assignment — see sweep.h). This
// module makes that distributable: each shard writes a small JSON
// results file (per-point resultFingerprint strings keyed by global
// index, plus enough header to reject mismatched shards), and the merge
// step reassembles input-order results from any number of shard files —
// verifying complete, non-overlapping coverage — so the merged
// sweepFingerprint() can be compared bit-for-bit against an unsharded
// run's. A work-unit manifest describes the fan-out (which shard runs
// which points, with ready-to-paste --shard=i/N args) for whatever
// launches the machines.
//
// Producers/consumers: the sweep benches' --shard=i/N / --merge flags
// (bench/bench_shard.h), the tools/sweep_shard.cc CLI (plan + merge),
// and the CI distributed-sweep job. The formats are versioned by a
// "format" field; parsers reject unknown versions rather than guessing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/sweep.h"

namespace homa {

/// Hard cap on the grid size the file formats accept. A sanity bound,
/// not a real limit (today's grids are tens of points): it keeps a
/// corrupt or hostile "total_points" header from driving the merge's
/// slot allocation or the manifest writer's point lists to OOM.
constexpr uint64_t kMaxSweepPoints = 1'000'000;

/// One sweep point's record in a shard results file.
struct ShardPoint {
    uint64_t index = 0;       ///< global point index in the full grid
    uint64_t seed = 0;        ///< effective traffic.seed the point ran with
    std::string label;        ///< human label ("Homa/W3/incast"); may be empty
    std::string fingerprint;  ///< resultFingerprint() of the point's result
};

/// A shard results file (format "homa-sweep-shard-v1"): the slice of a
/// sweep one machine ran, self-describing enough that merging can reject
/// files from a different sweep, grid size, seed rule, or shard layout.
/// A fully merged sweep is the same structure with shard = {0, 1} and
/// every point present.
struct ShardFile {
    std::string sweep;          ///< sweep name ("sweep_speedup", "fig12_13")
    ShardSpec shard;            ///< which slice this file holds
    uint64_t totalPoints = 0;   ///< size of the full grid
    uint64_t baseSeed = 0;      ///< SweepOptions::baseSeed used
    bool deriveSeeds = false;   ///< SweepOptions::deriveSeeds used
    int threads = 1;            ///< workers this shard ran with
    double wallSeconds = 0;     ///< shard wall time (parallel pass)
    /// Wall time of an additional 1-thread verification pass, when the
    /// producing bench ran one (sweep_speedup does); 0 otherwise.
    double serialWallSeconds = 0;
    /// Per-shard 1-vs-N determinism check outcome; true when the
    /// producing bench did not run one.
    bool identical = true;
    /// Points this shard ran, ascending by global index. Every index
    /// must satisfy shardOwns(shard, index).
    std::vector<ShardPoint> points;
};

/// Canonical fingerprint of a whole (partial or merged) sweep: FNV-1a 64
/// over "<index>=<fingerprint>\n" records in ascending index order,
/// rendered as 16 hex digits. Two sweeps are byte-identical iff their
/// per-point fingerprints — and hence this hash — are equal.
std::string sweepFingerprint(const std::vector<ShardPoint>& points);

/// Serializes `f` as pretty-printed JSON (trailing newline included).
/// `extraRawFields`, when non-empty, is spliced verbatim into the top
/// object — the sweep_speedup bench uses it to keep its BENCH_sweep.json
/// keys (speedup, results_identical_across_thread_counts, ...) alongside
/// the shard schema so tools/bench_compare.cc consumes merged artifacts
/// unchanged. Each extra line must be "  \"key\": value," formatted.
std::string writeShardFile(const ShardFile& f,
                           const std::string& extraRawFields = "");

/// Parses writeShardFile() output (or any JSON with the same schema).
/// Returns false with a one-line reason in `err` on malformed JSON, a
/// missing/unknown "format", header fields out of range, point indices
/// that are unsorted/duplicated/out of range, or points the declared
/// shard does not own.
bool parseShardFile(const std::string& json, ShardFile& out,
                    std::string& err);

/// The BENCH_sweep.json compatibility keys for a sweep_speedup-style
/// file (bench name, point count, serial/parallel walls, distributed
/// speedup = serial / parallel, 1-vs-N flag), formatted for
/// writeShardFile()'s extraRawFields. Empty when `f` carries no serial
/// pass data, i.e. when speedup would be meaningless.
std::string benchCompatExtras(const ShardFile& f);

/// Builds the results file for one shard run: fingerprints every result,
/// attaches labels (indexed by *global* point index; pass {} for none)
/// and the options the sweep ran with. `sweepName` must match across
/// shards for the merge to accept them.
ShardFile shardFileFromOutcome(const std::string& sweepName,
                               const SweepOptions& opts,
                               const ShardSpec& shard,
                               const ShardOutcome& outcome,
                               const std::vector<std::string>& labels);

/// Merges shard files (any order) into a single full-coverage ShardFile
/// with shard = {0, 1}. Rejects — returning false with a reason in
/// `err` — mismatched headers (sweep name, totalPoints, baseSeed,
/// deriveSeeds, shard count), duplicate shard indices or overlapping
/// points, and incomplete coverage (a missing shard or point). Merged
/// wall time is the max over shards (machines run concurrently), the
/// serial wall is the sum (one machine would run every slice), threads
/// is the sum, and `identical` is the AND.
bool mergeShardFiles(const std::vector<ShardFile>& shards, ShardFile& out,
                     std::string& err);

/// A work-unit manifest (format "homa-sweep-manifest-v1") describing how
/// a sweep fans out: shard k of shardCount runs the points
/// shardPointIndices({k, shardCount}, totalPoints) with --shard=k/N.
struct ShardManifest {
    std::string sweep;         ///< sweep name the shards must report
    uint64_t totalPoints = 0;  ///< size of the full grid
    int shardCount = 1;        ///< number of work units
    uint64_t baseSeed = 0;     ///< SweepOptions::baseSeed for every shard
    bool deriveSeeds = false;  ///< SweepOptions::deriveSeeds for every shard
};

/// Serializes the manifest (including each shard's point list and
/// --shard=i/N args) as pretty-printed JSON.
std::string writeShardManifest(const ShardManifest& m);

/// Parses writeShardManifest() output. Returns false with a reason in
/// `err` on malformed JSON, an unknown format, an invalid header, or a
/// shards array inconsistent with the positional assignment rule.
bool parseShardManifest(const std::string& json, ShardManifest& out,
                        std::string& err);

/// True when a shard file is a plausible work product of `m` (same sweep
/// name, grid size, shard count, and seed rule).
bool shardMatchesManifest(const ShardManifest& m, const ShardFile& f,
                          std::string& err);

/// The distributed-determinism oracle: true when two results files
/// describe byte-identical sweeps — same grid, and per point the same
/// index, seed, and fingerprint (hence equal sweepFingerprint()s).
/// On divergence, `err` lists what differed (one line per point, capped).
/// Used by the benches' --verify-against, the sweep_shard CLI, and the
/// CI distributed-sweep merge job; keep it single-sourced here.
bool sweepsIdentical(const ShardFile& merged, const ShardFile& reference,
                     std::string& err);

/// Whole-file text I/O for the shard/manifest files (shared by the CLI
/// and the benches). Both return false on any I/O error.
bool readTextFile(const std::string& path, std::string& out);
bool writeTextFile(const std::string& path, const std::string& text);

}  // namespace homa
