// Experiment harness: build a network + protocol + workload, run, report.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "baselines/basic_transport.h"
#include "baselines/ndp.h"
#include "baselines/pfabric.h"
#include "baselines/phost.h"
#include "baselines/pias.h"
#include "baselines/streaming.h"
#include "core/homa_transport.h"
#include "driver/oracle.h"
#include "sim/fault.h"
#include "sim/fluid.h"
#include "sim/parallel.h"
#include "stats/closed_loop.h"
#include "stats/counters.h"
#include "stats/dag.h"
#include "stats/slowdown.h"
#include "workload/generator.h"

namespace homa {

enum class Protocol {
    Homa,
    Basic,
    PHost,
    Pias,
    PFabric,
    Ndp,
    StreamSC,  // single connection per peer (InfRC-like, infinite window)
    StreamMC,  // connection per message (InfRC-MC / TCP-MC-like)
};

const char* protocolName(Protocol p);

struct ProtocolConfig {
    Protocol kind = Protocol::Homa;
    HomaConfig homa;               // Homa and Basic
    PHostConfig phost;
    PiasConfig pias;
    PFabricConfig pfabric;
    NdpConfig ndp;
    StreamingConfig streaming;
    /// Seed unscheduled priorities / PIAS thresholds from the workload
    /// (paper §4); false = Homa adapts online.
    bool precomputePriorities = true;
};

/// Transport factory + the switch queue discipline the protocol expects.
TransportFactory makeTransportFactory(const ProtocolConfig& proto,
                                      const NetworkConfig& net,
                                      const SizeDistribution* workload);
std::function<std::unique_ptr<Qdisc>()> switchQdiscFor(
    const ProtocolConfig& proto);

struct ExperimentConfig {
    NetworkConfig net = NetworkConfig::fatTree144();
    ProtocolConfig proto;
    TrafficConfig traffic;
    /// Fraction of the generation window treated as warm-up (excluded from
    /// all statistics).
    double warmupFraction = 0.2;
    /// After generation stops, let in-flight messages finish for this long.
    Duration drainGrace = milliseconds(50);
    bool measureWastedBandwidth = false;
    /// Parallel engine: shard the simulation across this many threads
    /// (sim/parallel.h). Results are byte-identical at any thread count;
    /// scenarios the engine cannot shard (closed-loop, DAG, single-rack,
    /// wasted-bandwidth probes, fluid hybrid) silently run serially.
    ParallelConfig parallel;
    /// Fluid fast path (sim/fluid.h): messages with length >= this many
    /// bytes become flow-level fluid transfers instead of packets; 0 sends
    /// everything fluid, -1 (default) disables the engine entirely. A
    /// scenario "fluid:" modifier overrides this. Fluid runs are serial
    /// (any `parallel.threads` yields byte-identical results) and do not
    /// compose with fault injection (runExperiment aborts).
    int64_t fluidThresholdBytes = -1;
};

struct ExperimentResult {
    uint64_t generated = 0;
    uint64_t delivered = 0;        // within the measurement window
    uint64_t deliveredTotal = 0;   // including warm-up and drain
    std::unique_ptr<SlowdownTracker> slowdown;

    Time windowStart = 0;
    Time windowEnd = 0;

    double downlinkUtilization = 0;  // wire bytes / capacity in window
    double wastedBandwidth = 0;      // Figure 16 metric
    QueueOccupancy torUp, aggrDown, torDown;      // Table 1
    std::array<double, kPriorityLevels> prioUsage{};  // Figure 21
    uint64_t switchDrops = 0;
    uint64_t switchTrims = 0;

    // Three-tier topologies only (all zero when coreSwitches == 0, and
    // excluded from resultFingerprint so two-tier fingerprints are
    // unchanged). Utilizations are mean link busy fractions over the run;
    // on an oversubscribed core, coreLinkUtilization > aggrLinkUtilization
    // is the contention signature fig_oversub sweeps.
    int coreSwitches = 0;                 // from the final net config
    QueueOccupancy aggrUp, coreDown;      // aggr->core and core->aggr queues
    double aggrLinkUtilization = 0;       // TOR->aggr links
    double coreLinkUtilization = 0;       // aggr->core links

    /// Closed-loop scenarios only (null otherwise): per-source-host
    /// throughput and message-latency percentiles in the window.
    std::unique_ptr<ClosedLoopTracker> closedLoop;
    /// Dag scenarios only (null otherwise): per-tree completion-time and
    /// slowdown percentiles in the window.
    std::unique_ptr<DagTracker> dag;
    /// Closed-loop/dag scenarios only: peak per-host outstanding count the
    /// generator observed (never exceeds the configured window).
    int maxOutstanding = 0;

    /// Fault scenarios only (null otherwise): fault event counts and
    /// drops by cause (sim/fault.h). The by-cause drops on switch ports
    /// are also folded into `switchDrops`.
    std::unique_ptr<FaultStats> faults;

    /// Fluid-hybrid runs only (null otherwise): the fluid regime's flow
    /// counts, byte ledger, solver epochs, and slowdown percentiles
    /// (sim/fluid.h). Fluid deliveries also feed `slowdown` and the
    /// delivered counters, so whole-run statistics cover both regimes;
    /// wire-level stats (utilization, queue occupancy, prioUsage) cover
    /// only the packet regime — fluid bytes never touch the wires. When
    /// the threshold admits zero flows the block stays out of
    /// resultFingerprint, so such runs replay byte-identical to pre-fluid
    /// goldens.
    std::unique_ptr<FluidStats> fluid;

    /// True when the protocol kept up with the offered load: the backlog
    /// of undelivered messages at the end of generation is bounded.
    bool keptUp = false;
};

ExperimentResult runExperiment(const ExperimentConfig& cfg);

/// Per-edge unloaded cost for DAG tree slowdown: Oracle::bestOneWay with
/// the intra-rack path when src/dst share a rack. One definition, used
/// by both the message-level (runExperiment) and RPC-level
/// (runRpcExperiment) DAG harnesses so their slowdowns share a
/// denominator. `net` and `oracle` must outlive the returned function.
DagCostFn dagOracleCost(Network& net, const Oracle& oracle);

/// Capacity search for Figure 15: highest load (percent, step `stepPct`)
/// the protocol sustains (keptUp) for the workload.
double findMaxLoad(ExperimentConfig base, double startPct = 40,
                   double stepPct = 5, double maxPct = 95);

/// Bench scale knob: "quick" (default) or "full" via HOMA_BENCH_SCALE.
struct BenchScale {
    Duration genWindow;   // traffic generation duration
    int hostsScale;       // divide the topology for heavy workloads (>=1)
    static BenchScale fromEnv();
};

}  // namespace homa
