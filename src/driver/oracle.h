// Best-case (unloaded network) completion times — the denominators of
// every slowdown number in the paper.
#pragma once

#include <cstdint>
#include <map>

#include "sim/topology.h"
#include "stats/slowdown.h"

namespace homa {

/// Computes the minimum time to move a message between two hosts on an
/// idle network (worst-case placement: cross-rack on the fat-tree,
/// cross-pod — through the oversubscribed core — on a three-tier one), by
/// exact simulation of the store-and-forward pipeline: packets serialize
/// back-to-back on the sender link, each later hop forwards a packet after
/// the switch delay, and the receiver's software delay is paid once at the
/// end. Validated against the event simulator in tests.
class Oracle {
public:
    explicit Oracle(const NetworkConfig& cfg) : cfg_(cfg) {}

    /// One-way message delivery time (message handed to sender transport
    /// -> last byte processed by receiver software). `intraRack` picks the
    /// short path (host-TOR-host); the default is the cross-rack path.
    Duration bestOneWay(uint32_t size, bool intraRack = false) const;

    /// Echo RPC: request there, response (same size) back.
    Duration bestEchoRpc(uint32_t size) const;

    OracleFn oneWayFn() const {
        return [this](uint32_t s) { return bestOneWay(s); };
    }
    OracleFn echoRpcFn() const {
        return [this](uint32_t s) { return bestEchoRpc(s); };
    }

private:
    Duration computeOneWay(uint32_t size, bool intraRack) const;

    NetworkConfig cfg_;
    mutable std::map<std::pair<uint32_t, bool>, Duration> cache_;
};

}  // namespace homa
