// Echo-RPC experiment harness — the implementation measurements of §5.1.
//
// Mirrors the paper's CloudLab setup: a single-switch cluster where client
// hosts issue echo RPCs (send `size` bytes, the server returns them) to
// random servers, with RPC sizes drawn from a workload. Slowdown is
// measured against the best-case RPC time on an unloaded network.
//
// Two issue modes: open loop (the default — Poisson arrivals calibrated
// to `load`) and closed loop (`closedLoopWindow` > 0 — each client keeps
// that many RPCs in flight and issues the next only when a response
// returns, after an optional think time). Either mode composes with
// ON-OFF burst/idle modulation (`onOff`): open-loop arrivals run on the
// client's ON-time clock at a boosted rate, closed-loop clients pause
// issuing during idle periods and refill their window at burst start.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rpc.h"
#include "driver/experiment.h"
#include "stats/tenant.h"
#include "workload/rpc_dag.h"
#include "workload/serving.h"

namespace homa {

struct RpcExperimentConfig {
    NetworkConfig net = NetworkConfig::singleRack16();
    ProtocolConfig proto;
    WorkloadId workload = WorkloadId::W3;
    double load = 0.8;  // open loop only; closed loop sets its own rate
    uint64_t seed = 17;
    Time stop = milliseconds(20);
    double warmupFraction = 0.2;
    Duration drainGrace = milliseconds(30);
    int clients = 8;  // hosts [0, clients) are clients, the rest servers

    /// Closed-loop mode when > 0: RPCs each client keeps outstanding.
    int closedLoopWindow = 0;
    /// Closed loop: mean exponential think time before the next request.
    Duration thinkTime = 0;
    /// ON-OFF burst/idle modulation of request issue (both modes).
    OnOffConfig onOff;

    /// Fan-out/fan-in mode: instead of independent echo RPCs, each client
    /// issues partition-aggregate trees (workload/rpc_dag.h) as *real*
    /// RPCs — internal nodes answer their parent via deferred responses
    /// only after all their child RPCs return. Tree node hosts are drawn
    /// from the servers; clients run closed-loop over trees (`dag.window`
    /// each; `load` and `closedLoopWindow` are ignored). ON-OFF gates
    /// tree issues. Requires >= 2 servers when dag.depth >= 2.
    bool dagMode = false;
    DagConfig dag;

    /// Multi-tenant serving mode when `serving.tenants` is non-empty:
    /// each tenant owns a client subset (serving.totalClients() replaces
    /// `clients`) with its own workload/arrival mode, and sends to a
    /// replica group (named server pool) through a ReplicaSelector —
    /// round-robin, random, or power-of-two-choices on outstanding-RPC
    /// depth — with optional SLO-aware hedging (workload/serving.h).
    /// Mutually exclusive with `dagMode`; `workload`, `load`,
    /// `closedLoopWindow`, `thinkTime`, and `onOff` are ignored (each
    /// tenant carries its own).
    ServingConfig serving;

    /// Parallel-engine knob, accepted for config uniformity with
    /// ExperimentConfig (sweep grids carry one knob). The RPC harness
    /// orchestrates every client from one loop and draws RpcIds from the
    /// global id stream, so it always runs single-shard today — and its
    /// default single-switch topology (§5.1) would clamp to one shard
    /// regardless.
    ParallelConfig parallel;
};

/// Whole-run conservation ledgers of a serving experiment (not
/// window-gated — conservation must hold over *every* call, or the
/// accounting is broken). The serving tests pin these invariants:
///   callsIssued       == logicalIssued + hedgesIssued
///   responsesConsumed == logicalCompleted   (one response per logical RPC)
///   hedgesIssued      == hedgesWon + hedgesCancelled + hedgesFailed
///   primariesCancelled== hedgesWon          (losing primary cancelled)
///   issuedBytes       == consumedBytes + refundedBytes + unresolvedBytes
/// The byte ledger is exact because servers echo (response size ==
/// request size): every call is worth 2*size, consumed by the winning
/// response, refunded when the call is cancelled, or left unresolved at
/// run end.
struct ServingStats {
    uint64_t logicalIssued = 0;      ///< logical RPCs started
    uint64_t logicalCompleted = 0;   ///< logical RPCs whose response arrived
    uint64_t callsIssued = 0;        ///< endpoint calls: primaries + hedges
    uint64_t responsesConsumed = 0;  ///< responses that completed a logical
    uint64_t hedgesIssued = 0;
    uint64_t hedgesWon = 0;          ///< hedge answered first
    uint64_t hedgesCancelled = 0;    ///< primary answered first
    uint64_t hedgesFailed = 0;       ///< hedge unresolved at run end
    uint64_t primariesCancelled = 0; ///< primaries cancelled by winning hedge
    int64_t issuedBytes = 0;         ///< 2*size per call at issue
    int64_t consumedBytes = 0;       ///< 2*size of each winning call
    int64_t refundedBytes = 0;       ///< 2*size of each cancelled call
    int64_t unresolvedBytes = 0;     ///< calls never resolved by run end
};

struct RpcExperimentResult {
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t retries = 0;
    uint64_t reexecutions = 0;
    /// Slowdown vs best echo RPC time (null in dag mode — per-edge RPCs
    /// are not echoes, so the echo oracle has no denominator there).
    std::unique_ptr<SlowdownTracker> slowdown;
    /// Per-client in-window throughput and RPC latency percentiles (dag
    /// mode: one op per completed tree).
    std::unique_ptr<ClosedLoopTracker> perClient;
    /// Dag mode only (null otherwise): per-tree completion and slowdown.
    /// `issued`/`completed` then count trees, not individual RPCs.
    std::unique_ptr<DagTracker> dag;
    /// Serving mode only (null otherwise): per-tenant SLO metrics.
    std::unique_ptr<TenantTracker> tenants;
    /// Serving mode conservation ledgers (all-zero otherwise).
    ServingStats serving;
    bool keptUp = false;
};

RpcExperimentResult runRpcExperiment(const RpcExperimentConfig& cfg);

/// Canonical serialization of everything an RpcExperimentResult measures,
/// doubles as hex floats — the RPC-side sibling of
/// resultFingerprint(ExperimentResult) in driver/sweep.h. Two results are
/// byte-identical iff their fingerprints are equal; the serving
/// determinism goldens diff these across replays, thread counts, and
/// sweep widths. The tenant/serving block appears only when `r.tenants`
/// is set, so non-serving fingerprints are unchanged by the serving
/// layer's existence.
std::string resultFingerprint(const RpcExperimentResult& r);

/// Figure 10: one client (host 0) issues `concurrent` RPCs in parallel to
/// the other 15 hosts (tiny request, `responseBytes` response), refilling
/// as responses arrive until `totalRpcs` complete. Returns goodput in Gbps
/// at the client downlink and the count of RPCs that needed client retries.
struct IncastResult {
    double throughputGbps = 0;
    uint64_t completed = 0;
    uint64_t retries = 0;
};

IncastResult runIncastExperiment(int concurrent, bool incastControl,
                                 uint32_t responseBytes = 10000,
                                 int totalRpcs = 0, uint64_t seed = 3);

}  // namespace homa
