#include "driver/oracle.h"

#include <algorithm>
#include <vector>

#include "sim/packet.h"

namespace homa {

Duration Oracle::computeOneWay(uint32_t size, bool intraRack) const {
    // Split into packets exactly like the transports do.
    const int packets =
        std::max(1, static_cast<int>((size + kMaxPayload - 1) / kMaxPayload));
    std::vector<int64_t> wire(packets);
    uint32_t left = size;
    for (int i = 0; i < packets; i++) {
        const uint32_t payload = std::min<uint32_t>(left, kMaxPayload);
        wire[i] = payload + kHeaderBytes + kFrameOverhead;
        left -= payload;
    }

    std::vector<Duration> done(packets, 0);

    if (cfg_.threeTier() && !intraRack) {
        // Worst-case placement on a three-tier tree: cross-pod, 6 links /
        // 5 switches, with the aggr<->core hops at the oversubscribed
        // bandwidth. Spraying spreads consecutive packets across parallel
        // links at every interior hop; the best case is a round-robin
        // assignment, modeled by one FIFO clock per parallel link. With
        // oversubscription > 1 an aggr<->core link can serialize slower
        // than the sender link, so (unlike the two-tier tree) interior
        // queueing can genuinely bound completion.
        const int fan = cfg_.aggrSwitches;          // TOR -> pod aggrs
        const int coreFan = fan * cfg_.coreSwitches;  // aggr -> core links
        const Bandwidth up = cfg_.aggrCoreLink();
        const std::vector<Bandwidth> hops = {cfg_.hostLink, cfg_.coreLink,
                                             up,            up,
                                             cfg_.coreLink, cfg_.hostLink};
        const std::vector<int> mult = {1, fan, coreFan, coreFan, fan, 1};
        Duration senderFree = 0;
        for (int i = 0; i < packets; i++) {
            done[i] = senderFree + hops[0].serialize(wire[i]);
            senderFree = done[i];
        }
        for (size_t k = 1; k < hops.size(); k++) {
            std::vector<Duration> linkFree(mult[k], 0);
            for (int i = 0; i < packets; i++) {
                Duration& free = linkFree[i % mult[k]];
                const Duration start =
                    std::max(done[i] + cfg_.switchDelay, free);
                done[i] = start + hops[k].serialize(wire[i]);
                free = done[i];
            }
        }
    } else {
        // Hop bandwidths along the path.
        std::vector<Bandwidth> hops = {cfg_.hostLink};
        if (!cfg_.singleRack() && !intraRack) {
            hops.push_back(cfg_.coreLink);
            hops.push_back(cfg_.coreLink);
        }
        hops.push_back(cfg_.hostLink);

        // done[i] = time packet i has fully left hop k (store-and-forward:
        // hop k+1 starts after done[i] + switchDelay).
        //
        // On the single-rack cluster there is one path, so packets share
        // every link FIFO. On the fat-tree, per-packet spraying lets
        // packets travel independent core paths; the sender link imposes
        // the only ordering (its FIFO spacing is >= every downstream
        // serialization time, so shared final-hop contention cannot delay
        // the completion-determining packet). The event simulator confirms
        // both models exactly.
        Duration linkFree = 0;
        for (int i = 0; i < packets; i++) {
            done[i] = linkFree + hops[0].serialize(wire[i]);
            linkFree = done[i];
        }
        const bool sharedPath = cfg_.singleRack() || intraRack;
        for (size_t k = 1; k < hops.size(); k++) {
            linkFree = 0;
            for (int i = 0; i < packets; i++) {
                Duration start = done[i] + cfg_.switchDelay;
                if (sharedPath) start = std::max(start, linkFree);
                done[i] = start + hops[k].serialize(wire[i]);
                linkFree = done[i];
            }
        }
    }
    Duration completion = 0;
    for (int i = 0; i < packets; i++) completion = std::max(completion, done[i]);
    return completion + cfg_.softwareDelay;
}

Duration Oracle::bestOneWay(uint32_t size, bool intraRack) const {
    const auto key = std::make_pair(size, intraRack);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const Duration d = computeOneWay(size, intraRack);
    if (cache_.size() > 100000) cache_.clear();
    cache_[key] = d;
    return d;
}

Duration Oracle::bestEchoRpc(uint32_t size) const {
    // The response generation is covered by the receiver software delay
    // already included in each one-way time.
    return 2 * bestOneWay(size);
}

}  // namespace homa
