#include "transport/message.h"

#include <algorithm>

namespace homa {

uint32_t Reassembly::addRange(uint32_t offset, uint32_t len) {
    if (offset >= length_) return 0;
    uint32_t end = std::min(offset + len, length_);
    if (end <= offset) return 0;

    // Find all existing ranges overlapping or adjacent to [offset, end) and
    // merge them into one.
    uint32_t newBytes = end - offset;
    auto it = ranges_.upper_bound(offset);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= offset) it = prev;
    }
    uint32_t mergedStart = offset;
    uint32_t mergedEnd = end;
    while (it != ranges_.end() && it->first <= mergedEnd) {
        // Overlap with [it->first, it->second): subtract the overlap with
        // the *new* range from newBytes.
        uint32_t overlapStart = std::max(it->first, offset);
        uint32_t overlapEnd = std::min(it->second, end);
        if (overlapEnd > overlapStart) newBytes -= (overlapEnd - overlapStart);
        mergedStart = std::min(mergedStart, it->first);
        mergedEnd = std::max(mergedEnd, it->second);
        it = ranges_.erase(it);
    }
    ranges_[mergedStart] = mergedEnd;
    received_ += newBytes;
    return newBytes;
}

uint32_t Reassembly::contiguousPrefix() const {
    auto it = ranges_.begin();
    if (it == ranges_.end() || it->first != 0) return 0;
    return it->second;
}

std::optional<std::pair<uint32_t, uint32_t>> Reassembly::firstGap() const {
    if (complete()) return std::nullopt;
    uint32_t gapStart = contiguousPrefix();
    auto it = ranges_.upper_bound(gapStart);
    uint32_t gapEnd = (it != ranges_.end()) ? it->first : length_;
    return std::make_pair(gapStart, gapEnd - gapStart);
}

}  // namespace homa
