// Messages and reassembly.
//
// A Message is the unit of transmission in every transport here: a block of
// bytes with a known length, one sender, one receiver (§2.2 of the paper).
// Reassembly tracks which byte ranges of an inbound message have arrived;
// packets may arrive in any order (per-packet spraying) and may be
// duplicated (retransmissions), so it maintains a set of disjoint ranges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "sim/packet.h"
#include "sim/time.h"

namespace homa {

struct Message {
    MsgId id = 0;
    HostId src = kNoHost;
    HostId dst = kNoHost;
    uint32_t length = 0;
    Time created = 0;
    uint16_t flags = 0;  // PacketFlag bits relevant to the message (request, incast)
};

/// How a message was delivered; feeds the experiment statistics.
struct DeliveryInfo {
    Time completed = 0;
    Duration queueingDelay = 0;   // summed over the message's packets, all hops
    Duration preemptionLag = 0;   // idem (Figure 14 decomposition)
    uint32_t packetsReceived = 0;
    uint32_t duplicateBytes = 0;  // payload received more than once
};

/// Tracks received byte ranges of one inbound message.
class Reassembly {
public:
    explicit Reassembly(uint32_t messageLength) : length_(messageLength) {}

    /// Record receipt of [offset, offset+len). Returns the number of bytes
    /// that were new (0 for a pure duplicate). Ranges beyond the message
    /// length are clipped.
    uint32_t addRange(uint32_t offset, uint32_t len);

    bool complete() const { return received_ == length_; }
    uint32_t receivedBytes() const { return received_; }
    uint32_t messageLength() const { return length_; }

    /// Length of the contiguous prefix received so far.
    uint32_t contiguousPrefix() const;

    /// First missing range, or nullopt when complete. `second` is the
    /// length of the gap (clipped to the message end).
    std::optional<std::pair<uint32_t, uint32_t>> firstGap() const;

private:
    uint32_t length_;
    uint32_t received_ = 0;
    std::map<uint32_t, uint32_t> ranges_;  // offset -> end (disjoint, sorted)
};

}  // namespace homa
