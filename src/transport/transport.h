// The interface every transport protocol implements.
//
// A Transport lives inside a simulated Host. The host feeds it received
// packets (after the host software delay) and pulls data packets from it
// when the NIC is free; the transport pushes control packets eagerly.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "sim/event_loop.h"
#include "sim/packet.h"
#include "sim/port.h"
#include "sim/random.h"
#include "transport/message.h"

namespace homa {

/// Services a Host provides to its transport.
class HostServices {
public:
    virtual ~HostServices() = default;
    virtual EventLoop& loop() = 0;
    virtual HostId id() const = 0;

    /// Eagerly enqueue a packet into the NIC (queued at p.priority).
    /// Transports use this for control packets (always sent at the highest
    /// priority) and, for protocols without sender SRPT, for data.
    virtual void pushPacket(Packet p) = 0;

    /// Tell the NIC that pullPacket() may now return something.
    virtual void kickNic() = 0;

    virtual Rng& rng() = 0;
};

class Transport : public PacketSource {
public:
    using DeliveryCallback =
        std::function<void(const Message&, const DeliveryInfo&)>;

    ~Transport() override = default;

    /// Begin transmitting an outbound message.
    virtual void sendMessage(const Message& m) = 0;

    /// A packet addressed to this host has arrived (post software delay).
    virtual void handlePacket(const Packet& p) = 0;

    /// PacketSource: the NIC pulls the next data packet. Transports that
    /// push everything return nullopt.
    std::optional<Packet> pullPacket() override { return std::nullopt; }

    /// Figure 16 probe: true when this receiver has at least one incomplete
    /// inbound message to which it is *not* currently granting (bandwidth
    /// it chose to withhold). Downlink idle + this => wasted bandwidth.
    virtual bool hasWithheldWork() const { return false; }

    void setDeliveryCallback(DeliveryCallback cb) { delivered_ = std::move(cb); }

protected:
    void notifyDelivered(const Message& m, const DeliveryInfo& info) {
        if (delivered_) delivered_(m, info);
    }

private:
    DeliveryCallback delivered_;
};

/// Creates one transport instance per host.
using TransportFactory =
    std::function<std::unique_ptr<Transport>(HostServices&)>;

}  // namespace homa
