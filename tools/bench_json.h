// Tiny JSON reader shared by the bench tooling (bench_compare,
// bench_trajectory). Just enough of RFC 8259 for the BENCH_*.json
// artifacts: objects, arrays, strings (no \u escapes beyond
// pass-through), numbers, booleans, null.
//
// Standard library only — these tools must build with a bare g++ in CI.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace benchjson {

struct Json {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json* get(const std::string& key) const {
        const auto it = fields.find(key);
        return it == fields.end() ? nullptr : &it->second;
    }
    double num(const std::string& key, double fallback = 0) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == Number ? v->number : fallback;
    }
    std::string str(const std::string& key) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == String ? v->text : std::string();
    }
};

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    bool parse(Json& out) {
        skipSpace();
        if (!value(out)) return false;
        skipSpace();
        return pos_ == s_.size();
    }

private:
    void skipSpace() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                       s_[pos_])) != 0) {
            pos_++;
        }
    }
    bool literal(const char* word) {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }
    bool value(Json& out) {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object(out);
            case '[': return array(out);
            case '"': out.kind = Json::String; return string(out.text);
            case 't': out.kind = Json::Bool; out.boolean = true;
                      return literal("true");
            case 'f': out.kind = Json::Bool; out.boolean = false;
                      return literal("false");
            case 'n': out.kind = Json::Null; return literal("null");
            default: return number(out);
        }
    }
    bool object(Json& out) {
        out.kind = Json::Object;
        pos_++;  // '{'
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == '}') { pos_++; return true; }
        for (;;) {
            skipSpace();
            std::string key;
            if (!string(key)) return false;
            skipSpace();
            if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
            skipSpace();
            Json v;
            if (!value(v)) return false;
            out.fields.emplace(std::move(key), std::move(v));
            skipSpace();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') { pos_++; continue; }
            if (s_[pos_] == '}') { pos_++; return true; }
            return false;
        }
    }
    bool array(Json& out) {
        out.kind = Json::Array;
        pos_++;  // '['
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == ']') { pos_++; return true; }
        for (;;) {
            skipSpace();
            Json v;
            if (!value(v)) return false;
            out.items.push_back(std::move(v));
            skipSpace();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') { pos_++; continue; }
            if (s_[pos_] == ']') { pos_++; return true; }
            return false;
        }
    }
    bool string(std::string& out) {
        if (pos_ >= s_.size() || s_[pos_] != '"') return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                const char esc = s_[pos_++];
                switch (esc) {
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'r': c = '\r'; break;
                    case 'b': c = '\b'; break;
                    case 'f': c = '\f'; break;
                    default: c = esc; break;  // '"', '\\', '/', lax \u
                }
            }
            out += c;
        }
        if (pos_ >= s_.size()) return false;
        pos_++;  // closing quote
        return true;
    }
    bool number(Json& out) {
        char* end = nullptr;
        out.kind = Json::Number;
        out.number = std::strtod(s_.c_str() + pos_, &end);
        if (end == s_.c_str() + pos_) return false;
        pos_ = static_cast<size_t>(end - s_.c_str());
        return true;
    }

    const std::string& s_;
    size_t pos_ = 0;
};

inline bool loadJson(const std::string& path, Json& out) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (!Parser(text).parse(out)) {
        std::fprintf(stderr, "%s is not valid JSON\n", path.c_str());
        return false;
    }
    return true;
}

}  // namespace benchjson
