// CI perf-regression gate over the BENCH_*.json artifacts.
//
//   bench_compare [--tolerance F] <baseline.json> <current.json> [more pairs...]
//   bench_compare --fidelity [--tolerance F] <artifact.json> [more...]
//
// Compares each current benchmark artifact against its checked-in
// baseline (bench/baselines/) and exits non-zero when a hot-path metric
// regressed by more than the tolerance (default 0.15 = 15%; override with
// --tolerance or the HOMA_BENCH_TOLERANCE env var — CI uses a looser
// value when baseline and current come from different machines).
//
// When a speedup gate cannot run because the current machine is
// core-starved, the skip is *written back* into the current artifact
// ("speedup_gate_skipped": true plus a reason) so downstream consumers
// (artifact uploads, bench_trajectory) see an explicit skip instead of a
// silently ungated number.
//
// The formats are recognized by content:
//  * Google-benchmark JSON (bench_micro_sched -> BENCH_sched.json):
//    per-benchmark cpu_time must not grow past baseline * (1 + tol), the
//    fitted BigO cpu_coefficient likewise, and the complexity-class
//    string must not change. Note: the micro benches *pin* their class
//    via ->Complexity(oLogN), so big_o is declared metadata — a real
//    complexity regression is caught by the large-N cpu_time entries and
//    the fitted coefficient exploding, while the string equality only
//    guards deliberate re-pinning. Baseline benchmarks that disappeared
//    fail; new ones are ignored.
//  * sweep_speedup JSON (BENCH_sweep.json): the 1-vs-N determinism flag
//    must be true (a hard failure at any tolerance), and the parallel
//    speedup must not drop below baseline * (1 - tol). The speedup gate
//    is skipped when the current artifact reports < 2 hardware cores —
//    a time-sliced runner measures the scheduler, not the sweep.
//  * parallel_speedup JSON (BENCH_parallel.json, the in-simulation
//    parallel engine): the serial-vs-parallel identity flag hard-fails
//    at any tolerance; the speedup gate runs only on machines reporting
//    >= 4 hardware cores (the bench's curve uses 4 workers).
//  * fluid_speedup JSON (BENCH_fluid.json, the flow-level fast path):
//    the all-packet identity flag hard-fails at any tolerance, the
//    hybrid speedup must clear a 10x floor (both runs are serial on the
//    same machine, so the ratio is immune to core starvation) and must
//    not drop below baseline * (1 - tol).
//  * serving JSON (BENCH_serving.json, the multi-tenant RPC serving
//    harness): the hedge-conservation / serial-vs-parallel / sweep
//    identity flags hard-fail at any tolerance, power-of-two-choices
//    p99 slowdown must stay *strictly below* random selection, and the
//    p2c tail must not drift past baseline * (1 + tol). All numbers are
//    deterministic simulation outputs, so no core-count escape applies.
//
// In both pairing modes an artifact whose schema the gate does not
// recognize is a FAILURE with an "unrecognized schema" message, never a
// silent skip — a new BENCH_*.json cannot drop out of CI unnoticed.
//
// --fidelity mode takes bare artifacts (no baseline pairing), dispatches
// on the "bench" field (fluid_speedup -> fidelity bands, serving -> its
// self-contained hard gates), and gates
// each fluid_speedup artifact's "fidelity" entries self-contained: the
// hybrid run's overall slowdown p50 must stay within --tolerance
// (default 0.25 in this mode) of the packet run's, and the hybrid p99
// within a fixed 2.5x band either way — the fluid model's max-min
// sharing legitimately reshapes the tail that Homa's SRPT compresses,
// and the band is where the FluidFidelity unit suite pins it. Both runs
// are simulations, so the numbers are machine-independent and the bands
// need no cross-machine slack.
//
// Standard library only — this tool must build with a bare g++ in CI.
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"

namespace {

using benchjson::Json;
using benchjson::loadJson;

// ------------------------------------------------------------ comparing

int failures = 0;

void fail(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::fputs("FAIL: ", stderr);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    failures++;
}

/// Satellite of the speedup gates: when one is skipped (core-starved
/// runner), record the skip *inside the compared artifact* so whoever
/// consumes it downstream (CI artifact uploads, bench_trajectory) sees
/// "this number was never gated" instead of a silent pass. Inserts
/// "speedup_gate_skipped": true and the reason before the closing brace;
/// idempotent, and best-effort — a read-only artifact only loses the
/// annotation, not the gate's exit code.
void annotateSkip(const std::string& curPath, const std::string& reason) {
    std::ifstream in(curPath);
    if (!in) return;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    if (text.find("\"speedup_gate_skipped\"") != std::string::npos) return;
    const size_t brace = text.rfind('}');
    if (brace == std::string::npos) return;
    // Comma unless the object is empty.
    size_t last = brace;
    while (last > 0 && std::isspace(static_cast<unsigned char>(
                           text[last - 1])) != 0) {
        last--;
    }
    const bool needComma = last > 0 && text[last - 1] != '{';
    std::string note = needComma ? ",\n" : "\n";
    note += "  \"speedup_gate_skipped\": true,\n";
    note += "  \"speedup_gate_skip_reason\": \"" + reason + "\"\n";
    text = text.substr(0, last) + note + text.substr(brace);
    std::ofstream out(curPath, std::ios::trunc);
    if (!out) return;
    out << text;
}

/// Index google-benchmark entries by name, split by run_type.
std::map<std::string, const Json*> benchmarksByName(const Json& doc,
                                                    const char* runType) {
    std::map<std::string, const Json*> out;
    const Json* list = doc.get("benchmarks");
    if (list == nullptr || list->kind != Json::Array) return out;
    for (const Json& b : list->items) {
        if (b.str("run_type") == runType) out.emplace(b.str("name"), &b);
    }
    return out;
}

void compareGoogleBenchmark(const std::string& basePath, const Json& base,
                            const std::string& curPath, const Json& cur,
                            double tolerance) {
    const auto baseIters = benchmarksByName(base, "iteration");
    const auto curIters = benchmarksByName(cur, "iteration");
    for (const auto& [name, b] : baseIters) {
        const auto it = curIters.find(name);
        if (it == curIters.end()) {
            fail("%s: benchmark '%s' present in baseline %s but missing",
                 curPath.c_str(), name.c_str(), basePath.c_str());
            continue;
        }
        const double baseTime = b->num("cpu_time");
        const double curTime = it->second->num("cpu_time");
        if (baseTime <= 0) continue;
        const double ratio = curTime / baseTime;
        if (ratio > 1.0 + tolerance) {
            fail("%s: '%s' cpu_time %.1f ns vs baseline %.1f ns "
                 "(%.0f%% slower, tolerance %.0f%%)",
                 curPath.c_str(), name.c_str(), curTime, baseTime,
                 100.0 * (ratio - 1.0), 100.0 * tolerance);
        } else {
            std::printf("ok: %-40s %10.1f ns vs %10.1f ns (%+.1f%%)\n",
                        name.c_str(), curTime, baseTime,
                        100.0 * (ratio - 1.0));
        }
    }
    // BigO aggregates. The class string is pinned by the bench source, so
    // its equality only guards deliberate re-pinning; the *fitted*
    // coefficient is a measurement — a complexity regression inflates it
    // (the fit is dominated by the largest N) far beyond any tolerance.
    const auto baseAggr = benchmarksByName(base, "aggregate");
    const auto curAggr = benchmarksByName(cur, "aggregate");
    for (const auto& [name, b] : baseAggr) {
        if (b->str("aggregate_name") != "BigO") continue;
        const auto it = curAggr.find(name);
        if (it == curAggr.end()) {
            fail("%s: BigO aggregate '%s' missing vs baseline",
                 curPath.c_str(), name.c_str());
            continue;
        }
        const std::string baseO = b->str("big_o");
        const std::string curO = it->second->str("big_o");
        if (baseO != curO) {
            fail("%s: '%s' complexity class changed: %s -> %s "
                 "(update bench/baselines/ if intentional)",
                 curPath.c_str(), name.c_str(), baseO.c_str(), curO.c_str());
            continue;
        }
        const double baseCoef = b->num("cpu_coefficient");
        const double curCoef = it->second->num("cpu_coefficient");
        if (baseCoef > 0 && curCoef / baseCoef > 1.0 + tolerance) {
            fail("%s: '%s' fitted %s coefficient %.1f vs baseline %.1f "
                 "(%.0f%% worse, tolerance %.0f%%)",
                 curPath.c_str(), name.c_str(), curO.c_str(), curCoef,
                 baseCoef, 100.0 * (curCoef / baseCoef - 1.0),
                 100.0 * tolerance);
        } else {
            std::printf("ok: %-40s complexity %s, coefficient %.1f\n",
                        name.c_str(), curO.c_str(), curCoef);
        }
    }
}

void compareSweep(const std::string& basePath, const Json& base,
                  const std::string& curPath, const Json& cur,
                  double tolerance) {
    const Json* identical = cur.get("results_identical_across_thread_counts");
    if (identical == nullptr || identical->kind != Json::Bool ||
        !identical->boolean) {
        fail("%s: results_identical_across_thread_counts is not true — the "
             "parallel sweep runner broke determinism", curPath.c_str());
    } else {
        std::printf("ok: sweep results identical across thread counts\n");
    }
    // A single-core runner cannot show parallel speedup — the two passes
    // time-slice one CPU and the "parallel" run merely adds scheduling
    // overhead (historically measured ~0.8x). The artifact records the
    // core count precisely so this gate can tell a starved machine from a
    // real regression; artifacts predating the field (no hardware_cores
    // key) are still gated.
    const Json* cores = cur.get("hardware_cores");
    if (cores != nullptr && cores->kind == Json::Number &&
        cores->number < 2) {
        char reason[128];
        std::snprintf(reason, sizeof(reason),
                      "sweep speedup gate needs >= 2 hardware cores, "
                      "runner had %.0f", cores->number);
        std::printf("skip: %s\n", reason);
        annotateSkip(curPath, reason);
        return;
    }
    const double baseSpeedup = base.num("speedup");
    const double curSpeedup = cur.num("speedup");
    if (baseSpeedup > 0) {
        if (curSpeedup < baseSpeedup * (1.0 - tolerance)) {
            fail("%s: sweep speedup %.3f vs baseline %.3f in %s "
                 "(tolerance %.0f%%)",
                 curPath.c_str(), curSpeedup, baseSpeedup, basePath.c_str(),
                 100.0 * tolerance);
        } else {
            std::printf("ok: sweep speedup %.3f vs baseline %.3f\n",
                        curSpeedup, baseSpeedup);
        }
    }
}

void compareParallel(const std::string& basePath, const Json& base,
                     const std::string& curPath, const Json& cur,
                     double tolerance) {
    // Identity first: a parallel run that diverges from serial is a
    // correctness bug, failed at any tolerance.
    const Json* identical = cur.get("results_identical_across_thread_counts");
    if (identical == nullptr || identical->kind != Json::Bool ||
        !identical->boolean) {
        fail("%s: results_identical_across_thread_counts is not true — the "
             "parallel simulation engine broke determinism", curPath.c_str());
    } else {
        std::printf("ok: parallel simulation identical to serial at every "
                    "thread count\n");
    }
    // Speedup is hardware-dependent: only gate it where the engine had at
    // least 4 real cores to spread shards over (the curve runs 4 workers).
    const double cores = cur.num("hardware_cores");
    if (cores < 4) {
        char reason[128];
        std::snprintf(reason, sizeof(reason),
                      "parallel speedup gate needs >= 4 hardware cores, "
                      "runner had %.0f", cores);
        std::printf("skip: %s\n", reason);
        annotateSkip(curPath, reason);
        return;
    }
    const double baseSpeedup = base.num("speedup");
    const double curSpeedup = cur.num("speedup");
    if (baseSpeedup > 0) {
        if (curSpeedup < baseSpeedup * (1.0 - tolerance)) {
            fail("%s: parallel engine speedup %.3f vs baseline %.3f in %s "
                 "(tolerance %.0f%%)",
                 curPath.c_str(), curSpeedup, baseSpeedup, basePath.c_str(),
                 100.0 * tolerance);
        } else {
            std::printf("ok: parallel engine speedup %.3f vs baseline %.3f\n",
                        curSpeedup, baseSpeedup);
        }
    }
}

void compareFluid(const std::string& basePath, const Json& base,
                  const std::string& curPath, const Json& cur,
                  double tolerance) {
    // Identity first: an "all-packet" threshold that changes results
    // means the interception hook is not transparent — a correctness
    // bug, failed at any tolerance.
    const Json* identical = cur.get("all_packet_identical");
    if (identical == nullptr || identical->kind != Json::Bool ||
        !identical->boolean) {
        fail("%s: all_packet_identical is not true — a never-admitting "
             "fluid threshold must replay byte-identical to a run "
             "without the engine", curPath.c_str());
    } else {
        std::printf("ok: all-packet fluid threshold byte-identical to "
                    "disabled engine\n");
    }
    // The 10x floor is the headline claim; serial-vs-serial on one
    // machine, so no core-count escape hatch applies.
    const double curSpeedup = cur.num("speedup");
    constexpr double kFloor = 10.0;
    if (curSpeedup < kFloor) {
        fail("%s: fluid speedup %.1fx at %.0f hosts is below the %.0fx "
             "floor", curPath.c_str(), curSpeedup, cur.num("hosts"),
             kFloor);
    } else {
        std::printf("ok: fluid speedup %.1fx at %.0f hosts (floor %.0fx)\n",
                    curSpeedup, cur.num("hosts"), kFloor);
    }
    const double baseSpeedup = base.num("speedup");
    if (baseSpeedup > 0) {
        if (curSpeedup < baseSpeedup * (1.0 - tolerance)) {
            fail("%s: fluid speedup %.3f vs baseline %.3f in %s "
                 "(tolerance %.0f%%)",
                 curPath.c_str(), curSpeedup, baseSpeedup, basePath.c_str(),
                 100.0 * tolerance);
        } else {
            std::printf("ok: fluid speedup %.3f vs baseline %.3f\n",
                        curSpeedup, baseSpeedup);
        }
    }
}

/// Serving hard gates, shared by the pair-mode compare and --fidelity:
/// identity/conservation flags hard-fail at any tolerance, and the
/// headline power-of-two-choices claim — p2c p99 slowdown strictly below
/// random — is self-contained (both numbers are deterministic simulation
/// outputs recorded side by side in the artifact).
void checkServingGates(const std::string& path, const Json& doc) {
    for (const char* flag :
         {"hedge_conservation_holds", "serial_parallel_identical",
          "sweep_identical"}) {
        const Json* v = doc.get(flag);
        if (v == nullptr || v->kind != Json::Bool || !v->boolean) {
            fail("%s: %s is not true — the serving harness broke its "
                 "invariants", path.c_str(), flag);
        } else {
            std::printf("ok: %s\n", flag);
        }
    }
    const double p2cP99 = doc.num("p2c_p99_slowdown");
    const double randP99 = doc.num("random_p99_slowdown");
    if (p2cP99 <= 0 || randP99 <= 0) {
        fail("%s: missing p2c/random p99 slowdown metrics", path.c_str());
    } else if (p2cP99 >= randP99) {
        fail("%s: power-of-two-choices p99 slowdown %.3f is not strictly "
             "below random %.3f — the selector lost its tail win",
             path.c_str(), p2cP99, randP99);
    } else {
        std::printf("ok: p2c p99 slowdown %.3f < random %.3f "
                    "(tail win %.2fx)\n", p2cP99, randP99, randP99 / p2cP99);
    }
}

void compareServing(const std::string& basePath, const Json& base,
                    const std::string& curPath, const Json& cur,
                    double tolerance) {
    checkServingGates(curPath, cur);
    // Baseline drift: the simulated tail numbers are machine-independent
    // (no wall clock involved), so the tolerance guards intentional
    // harness changes, not runner noise.
    const double bas04 = base.num("p2c_p99_slowdown");
    const double cur04 = cur.num("p2c_p99_slowdown");
    if (bas04 > 0 && cur04 > bas04 * (1.0 + tolerance)) {
        fail("%s: p2c p99 slowdown %.3f vs baseline %.3f in %s "
             "(%.0f%% worse, tolerance %.0f%%)",
             curPath.c_str(), cur04, bas04, basePath.c_str(),
             100.0 * (cur04 / bas04 - 1.0), 100.0 * tolerance);
    } else if (bas04 > 0) {
        std::printf("ok: p2c p99 slowdown %.3f vs baseline %.3f\n", cur04,
                    bas04);
    }
}

/// --fidelity: gate one fluid_speedup artifact's hybrid-vs-packet
/// slowdown percentiles, self-contained (both numbers are simulation
/// outputs recorded side by side in the artifact).
void checkFidelity(const std::string& path, const Json& doc,
                   double p50Tolerance) {
    constexpr double kP99Band = 2.5;
    const Json* list = doc.get("fidelity");
    if (list == nullptr || list->kind != Json::Array || list->items.empty()) {
        fail("%s: no fidelity entries to gate", path.c_str());
        return;
    }
    for (const Json& e : list->items) {
        const std::string name = e.str("scenario");
        const double pp50 = e.num("packet_p50");
        const double hp50 = e.num("hybrid_p50");
        const double pp99 = e.num("packet_p99");
        const double hp99 = e.num("hybrid_p99");
        if (pp50 <= 0 || pp99 <= 0) {
            fail("%s: '%s' has non-positive packet percentiles",
                 path.c_str(), name.c_str());
            continue;
        }
        if (std::fabs(hp50 - pp50) > p50Tolerance * pp50) {
            fail("%s: '%s' fidelity drift at p50: hybrid %.3f vs packet "
                 "%.3f (tolerance %.0f%%)", path.c_str(), name.c_str(),
                 hp50, pp50, 100.0 * p50Tolerance);
        } else if (hp99 > pp99 * kP99Band || hp99 < pp99 / kP99Band) {
            fail("%s: '%s' fidelity drift at p99: hybrid %.3f vs packet "
                 "%.3f (band %.1fx)", path.c_str(), name.c_str(), hp99,
                 pp99, kP99Band);
        } else {
            std::printf("ok: %-12s p50 %.3f vs %.3f, p99 %.3f vs %.3f "
                        "(hybrid vs packet)\n", name.c_str(), hp50, pp50,
                        hp99, pp99);
        }
    }
}

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: bench_compare [--tolerance F] "
                 "[--skip-missing-current] "
                 "<baseline.json> <current.json> [more pairs...]\n"
                 "       bench_compare --fidelity [--tolerance F] "
                 "<artifact.json> [more...]\n");
    std::exit(2);
}

bool parseTolerance(const char* text, double& out) {
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(v >= 0) || v > 10) return false;
    out = v;
    return true;
}

bool fileExists(const std::string& path) {
    std::ifstream in(path);
    return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
    double tolerance = 0.15;
    bool toleranceSet = false;
    bool skipMissingCurrent = false;
    bool fidelity = false;
    if (const char* env = std::getenv("HOMA_BENCH_TOLERANCE")) {
        if (!parseTolerance(env, tolerance)) {
            std::fprintf(stderr,
                         "bench_compare: HOMA_BENCH_TOLERANCE must be a "
                         "number in [0, 10], got '%s'\n", env);
            return 2;
        }
        toleranceSet = true;
    }
    std::vector<std::string> paths;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--tolerance") == 0) {
            if (i + 1 >= argc || !parseTolerance(argv[i + 1], tolerance)) {
                usage();
            }
            toleranceSet = true;
            i++;
        } else if (std::strcmp(argv[i], "--skip-missing-current") == 0) {
            skipMissingCurrent = true;
        } else if (std::strcmp(argv[i], "--fidelity") == 0) {
            fidelity = true;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty()) usage();

    if (fidelity) {
        // Fidelity bands are simulation-vs-simulation, so the default is
        // the unit suite's p50 band, not the cross-machine perf default.
        const double p50Tol = toleranceSet ? tolerance : 0.25;
        for (const std::string& path : paths) {
            if (skipMissingCurrent && !fileExists(path)) {
                std::printf("skip: %s not present (benches have not run "
                            "on this machine)\n", path.c_str());
                continue;
            }
            Json doc;
            if (!loadJson(path, doc)) {
                failures++;
                continue;
            }
            std::printf("--- fidelity gate: %s (p50 tolerance %.0f%%) ---\n",
                        path.c_str(), 100.0 * p50Tol);
            // Dispatch on the artifact's declared schema; an artifact the
            // gate does not understand is a failure, not a silent skip —
            // otherwise a new BENCH_*.json drops out of CI unnoticed.
            const std::string kind = doc.str("bench");
            if (kind == "fluid_speedup") {
                checkFidelity(path, doc, p50Tol);
            } else if (kind == "serving") {
                checkServingGates(path, doc);
            } else {
                fail("%s: unrecognized schema '%s' — artifact not gated "
                     "(teach bench_compare its format or drop it)",
                     path.c_str(), kind.c_str());
            }
        }
        if (failures > 0) {
            std::fprintf(stderr, "bench_compare: %d fidelity failure(s)\n",
                         failures);
            return 1;
        }
        std::printf("bench_compare: all fidelity bands hold\n");
        return 0;
    }

    if (paths.size() % 2 != 0) usage();

    for (size_t i = 0; i < paths.size(); i += 2) {
        const std::string& basePath = paths[i];
        const std::string& curPath = paths[i + 1];
        // ctest registers the gate against the gitignored bench outputs,
        // which a fresh checkout does not have — skipping (loudly) beats
        // freezing a fallback path at configure time.
        if (skipMissingCurrent && !fileExists(curPath)) {
            std::printf("skip: %s not present (benches have not run on "
                        "this machine)\n", curPath.c_str());
            continue;
        }
        Json base, cur;
        if (!loadJson(basePath, base) || !loadJson(curPath, cur)) {
            failures++;
            continue;
        }
        std::printf("--- %s vs baseline %s (tolerance %.0f%%) ---\n",
                    curPath.c_str(), basePath.c_str(), 100.0 * tolerance);
        if (base.get("benchmarks") != nullptr) {
            compareGoogleBenchmark(basePath, base, curPath, cur, tolerance);
        } else if (base.str("bench") == "sweep_speedup") {
            compareSweep(basePath, base, curPath, cur, tolerance);
        } else if (base.str("bench") == "parallel_speedup") {
            compareParallel(basePath, base, curPath, cur, tolerance);
        } else if (base.str("bench") == "fluid_speedup") {
            compareFluid(basePath, base, curPath, cur, tolerance);
        } else if (base.str("bench") == "serving") {
            compareServing(basePath, base, curPath, cur, tolerance);
        } else {
            fail("%s: unrecognized schema '%s' — artifact not gated "
                 "(teach bench_compare its format or drop it)",
                 basePath.c_str(), base.str("bench").c_str());
        }
    }
    if (failures > 0) {
        std::fprintf(stderr, "bench_compare: %d regression(s)\n", failures);
        return 1;
    }
    std::printf("bench_compare: all metrics within tolerance\n");
    return 0;
}
