// CI perf-regression gate over the BENCH_*.json artifacts.
//
//   bench_compare [--tolerance F] <baseline.json> <current.json> [more pairs...]
//
// Compares each current benchmark artifact against its checked-in
// baseline (bench/baselines/) and exits non-zero when a hot-path metric
// regressed by more than the tolerance (default 0.15 = 15%; override with
// --tolerance or the HOMA_BENCH_TOLERANCE env var — CI uses a looser
// value when baseline and current come from different machines).
//
// Two formats are recognized by content:
//  * Google-benchmark JSON (bench_micro_sched -> BENCH_sched.json):
//    per-benchmark cpu_time must not grow past baseline * (1 + tol), the
//    fitted BigO cpu_coefficient likewise, and the complexity-class
//    string must not change. Note: the micro benches *pin* their class
//    via ->Complexity(oLogN), so big_o is declared metadata — a real
//    complexity regression is caught by the large-N cpu_time entries and
//    the fitted coefficient exploding, while the string equality only
//    guards deliberate re-pinning. Baseline benchmarks that disappeared
//    fail; new ones are ignored.
//  * sweep_speedup JSON (BENCH_sweep.json): the 1-vs-N determinism flag
//    must be true (a hard failure at any tolerance), and the parallel
//    speedup must not drop below baseline * (1 - tol). The speedup gate
//    is skipped when the current artifact reports < 2 hardware cores —
//    a time-sliced runner measures the scheduler, not the sweep.
//  * parallel_speedup JSON (BENCH_parallel.json, the in-simulation
//    parallel engine): the serial-vs-parallel identity flag hard-fails
//    at any tolerance; the speedup gate runs only on machines reporting
//    >= 4 hardware cores (the bench's curve uses 4 workers).
//
// Standard library only — this tool must build with a bare g++ in CI.
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ----------------------------------------------------------- tiny JSON
// Just enough of RFC 8259 for the benchmark artifacts: objects, arrays,
// strings (no \u escapes beyond pass-through), numbers, booleans, null.
struct Json {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json* get(const std::string& key) const {
        const auto it = fields.find(key);
        return it == fields.end() ? nullptr : &it->second;
    }
    double num(const std::string& key, double fallback = 0) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == Number ? v->number : fallback;
    }
    std::string str(const std::string& key) const {
        const Json* v = get(key);
        return v != nullptr && v->kind == String ? v->text : std::string();
    }
};

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    bool parse(Json& out) {
        skipSpace();
        if (!value(out)) return false;
        skipSpace();
        return pos_ == s_.size();
    }

private:
    void skipSpace() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                       s_[pos_])) != 0) {
            pos_++;
        }
    }
    bool literal(const char* word) {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }
    bool value(Json& out) {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object(out);
            case '[': return array(out);
            case '"': out.kind = Json::String; return string(out.text);
            case 't': out.kind = Json::Bool; out.boolean = true;
                      return literal("true");
            case 'f': out.kind = Json::Bool; out.boolean = false;
                      return literal("false");
            case 'n': out.kind = Json::Null; return literal("null");
            default: return number(out);
        }
    }
    bool object(Json& out) {
        out.kind = Json::Object;
        pos_++;  // '{'
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == '}') { pos_++; return true; }
        for (;;) {
            skipSpace();
            std::string key;
            if (!string(key)) return false;
            skipSpace();
            if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
            skipSpace();
            Json v;
            if (!value(v)) return false;
            out.fields.emplace(std::move(key), std::move(v));
            skipSpace();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') { pos_++; continue; }
            if (s_[pos_] == '}') { pos_++; return true; }
            return false;
        }
    }
    bool array(Json& out) {
        out.kind = Json::Array;
        pos_++;  // '['
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == ']') { pos_++; return true; }
        for (;;) {
            skipSpace();
            Json v;
            if (!value(v)) return false;
            out.items.push_back(std::move(v));
            skipSpace();
            if (pos_ >= s_.size()) return false;
            if (s_[pos_] == ',') { pos_++; continue; }
            if (s_[pos_] == ']') { pos_++; return true; }
            return false;
        }
    }
    bool string(std::string& out) {
        if (pos_ >= s_.size() || s_[pos_] != '"') return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                const char esc = s_[pos_++];
                switch (esc) {
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'r': c = '\r'; break;
                    case 'b': c = '\b'; break;
                    case 'f': c = '\f'; break;
                    default: c = esc; break;  // '"', '\\', '/', lax \u
                }
            }
            out += c;
        }
        if (pos_ >= s_.size()) return false;
        pos_++;  // closing quote
        return true;
    }
    bool number(Json& out) {
        char* end = nullptr;
        out.kind = Json::Number;
        out.number = std::strtod(s_.c_str() + pos_, &end);
        if (end == s_.c_str() + pos_) return false;
        pos_ = static_cast<size_t>(end - s_.c_str());
        return true;
    }

    const std::string& s_;
    size_t pos_ = 0;
};

bool loadJson(const std::string& path, Json& out) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (!Parser(text).parse(out)) {
        std::fprintf(stderr, "bench_compare: %s is not valid JSON\n",
                     path.c_str());
        return false;
    }
    return true;
}

// ------------------------------------------------------------ comparing

int failures = 0;

void fail(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::fputs("FAIL: ", stderr);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    failures++;
}

/// Index google-benchmark entries by name, split by run_type.
std::map<std::string, const Json*> benchmarksByName(const Json& doc,
                                                    const char* runType) {
    std::map<std::string, const Json*> out;
    const Json* list = doc.get("benchmarks");
    if (list == nullptr || list->kind != Json::Array) return out;
    for (const Json& b : list->items) {
        if (b.str("run_type") == runType) out.emplace(b.str("name"), &b);
    }
    return out;
}

void compareGoogleBenchmark(const std::string& basePath, const Json& base,
                            const std::string& curPath, const Json& cur,
                            double tolerance) {
    const auto baseIters = benchmarksByName(base, "iteration");
    const auto curIters = benchmarksByName(cur, "iteration");
    for (const auto& [name, b] : baseIters) {
        const auto it = curIters.find(name);
        if (it == curIters.end()) {
            fail("%s: benchmark '%s' present in baseline %s but missing",
                 curPath.c_str(), name.c_str(), basePath.c_str());
            continue;
        }
        const double baseTime = b->num("cpu_time");
        const double curTime = it->second->num("cpu_time");
        if (baseTime <= 0) continue;
        const double ratio = curTime / baseTime;
        if (ratio > 1.0 + tolerance) {
            fail("%s: '%s' cpu_time %.1f ns vs baseline %.1f ns "
                 "(%.0f%% slower, tolerance %.0f%%)",
                 curPath.c_str(), name.c_str(), curTime, baseTime,
                 100.0 * (ratio - 1.0), 100.0 * tolerance);
        } else {
            std::printf("ok: %-40s %10.1f ns vs %10.1f ns (%+.1f%%)\n",
                        name.c_str(), curTime, baseTime,
                        100.0 * (ratio - 1.0));
        }
    }
    // BigO aggregates. The class string is pinned by the bench source, so
    // its equality only guards deliberate re-pinning; the *fitted*
    // coefficient is a measurement — a complexity regression inflates it
    // (the fit is dominated by the largest N) far beyond any tolerance.
    const auto baseAggr = benchmarksByName(base, "aggregate");
    const auto curAggr = benchmarksByName(cur, "aggregate");
    for (const auto& [name, b] : baseAggr) {
        if (b->str("aggregate_name") != "BigO") continue;
        const auto it = curAggr.find(name);
        if (it == curAggr.end()) {
            fail("%s: BigO aggregate '%s' missing vs baseline",
                 curPath.c_str(), name.c_str());
            continue;
        }
        const std::string baseO = b->str("big_o");
        const std::string curO = it->second->str("big_o");
        if (baseO != curO) {
            fail("%s: '%s' complexity class changed: %s -> %s "
                 "(update bench/baselines/ if intentional)",
                 curPath.c_str(), name.c_str(), baseO.c_str(), curO.c_str());
            continue;
        }
        const double baseCoef = b->num("cpu_coefficient");
        const double curCoef = it->second->num("cpu_coefficient");
        if (baseCoef > 0 && curCoef / baseCoef > 1.0 + tolerance) {
            fail("%s: '%s' fitted %s coefficient %.1f vs baseline %.1f "
                 "(%.0f%% worse, tolerance %.0f%%)",
                 curPath.c_str(), name.c_str(), curO.c_str(), curCoef,
                 baseCoef, 100.0 * (curCoef / baseCoef - 1.0),
                 100.0 * tolerance);
        } else {
            std::printf("ok: %-40s complexity %s, coefficient %.1f\n",
                        name.c_str(), curO.c_str(), curCoef);
        }
    }
}

void compareSweep(const std::string& basePath, const Json& base,
                  const std::string& curPath, const Json& cur,
                  double tolerance) {
    const Json* identical = cur.get("results_identical_across_thread_counts");
    if (identical == nullptr || identical->kind != Json::Bool ||
        !identical->boolean) {
        fail("%s: results_identical_across_thread_counts is not true — the "
             "parallel sweep runner broke determinism", curPath.c_str());
    } else {
        std::printf("ok: sweep results identical across thread counts\n");
    }
    // A single-core runner cannot show parallel speedup — the two passes
    // time-slice one CPU and the "parallel" run merely adds scheduling
    // overhead (historically measured ~0.8x). The artifact records the
    // core count precisely so this gate can tell a starved machine from a
    // real regression; artifacts predating the field (no hardware_cores
    // key) are still gated.
    const Json* cores = cur.get("hardware_cores");
    if (cores != nullptr && cores->kind == Json::Number &&
        cores->number < 2) {
        std::printf("skip: sweep speedup gate (current run had %.0f "
                    "hardware core(s))\n", cores->number);
        return;
    }
    const double baseSpeedup = base.num("speedup");
    const double curSpeedup = cur.num("speedup");
    if (baseSpeedup > 0) {
        if (curSpeedup < baseSpeedup * (1.0 - tolerance)) {
            fail("%s: sweep speedup %.3f vs baseline %.3f in %s "
                 "(tolerance %.0f%%)",
                 curPath.c_str(), curSpeedup, baseSpeedup, basePath.c_str(),
                 100.0 * tolerance);
        } else {
            std::printf("ok: sweep speedup %.3f vs baseline %.3f\n",
                        curSpeedup, baseSpeedup);
        }
    }
}

void compareParallel(const std::string& basePath, const Json& base,
                     const std::string& curPath, const Json& cur,
                     double tolerance) {
    // Identity first: a parallel run that diverges from serial is a
    // correctness bug, failed at any tolerance.
    const Json* identical = cur.get("results_identical_across_thread_counts");
    if (identical == nullptr || identical->kind != Json::Bool ||
        !identical->boolean) {
        fail("%s: results_identical_across_thread_counts is not true — the "
             "parallel simulation engine broke determinism", curPath.c_str());
    } else {
        std::printf("ok: parallel simulation identical to serial at every "
                    "thread count\n");
    }
    // Speedup is hardware-dependent: only gate it where the engine had at
    // least 4 real cores to spread shards over (the curve runs 4 workers).
    const double cores = cur.num("hardware_cores");
    if (cores < 4) {
        std::printf("skip: parallel speedup gate (current run had %.0f "
                    "hardware core(s), need 4)\n", cores);
        return;
    }
    const double baseSpeedup = base.num("speedup");
    const double curSpeedup = cur.num("speedup");
    if (baseSpeedup > 0) {
        if (curSpeedup < baseSpeedup * (1.0 - tolerance)) {
            fail("%s: parallel engine speedup %.3f vs baseline %.3f in %s "
                 "(tolerance %.0f%%)",
                 curPath.c_str(), curSpeedup, baseSpeedup, basePath.c_str(),
                 100.0 * tolerance);
        } else {
            std::printf("ok: parallel engine speedup %.3f vs baseline %.3f\n",
                        curSpeedup, baseSpeedup);
        }
    }
}

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: bench_compare [--tolerance F] "
                 "[--skip-missing-current] "
                 "<baseline.json> <current.json> [more pairs...]\n");
    std::exit(2);
}

bool parseTolerance(const char* text, double& out) {
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(v >= 0) || v > 10) return false;
    out = v;
    return true;
}

bool fileExists(const std::string& path) {
    std::ifstream in(path);
    return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
    double tolerance = 0.15;
    bool skipMissingCurrent = false;
    if (const char* env = std::getenv("HOMA_BENCH_TOLERANCE")) {
        if (!parseTolerance(env, tolerance)) {
            std::fprintf(stderr,
                         "bench_compare: HOMA_BENCH_TOLERANCE must be a "
                         "number in [0, 10], got '%s'\n", env);
            return 2;
        }
    }
    std::vector<std::string> paths;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--tolerance") == 0) {
            if (i + 1 >= argc || !parseTolerance(argv[i + 1], tolerance)) {
                usage();
            }
            i++;
        } else if (std::strcmp(argv[i], "--skip-missing-current") == 0) {
            skipMissingCurrent = true;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty() || paths.size() % 2 != 0) usage();

    for (size_t i = 0; i < paths.size(); i += 2) {
        const std::string& basePath = paths[i];
        const std::string& curPath = paths[i + 1];
        // ctest registers the gate against the gitignored bench outputs,
        // which a fresh checkout does not have — skipping (loudly) beats
        // freezing a fallback path at configure time.
        if (skipMissingCurrent && !fileExists(curPath)) {
            std::printf("skip: %s not present (benches have not run on "
                        "this machine)\n", curPath.c_str());
            continue;
        }
        Json base, cur;
        if (!loadJson(basePath, base) || !loadJson(curPath, cur)) {
            failures++;
            continue;
        }
        std::printf("--- %s vs baseline %s (tolerance %.0f%%) ---\n",
                    curPath.c_str(), basePath.c_str(), 100.0 * tolerance);
        if (base.get("benchmarks") != nullptr) {
            compareGoogleBenchmark(basePath, base, curPath, cur, tolerance);
        } else if (base.str("bench") == "sweep_speedup") {
            compareSweep(basePath, base, curPath, cur, tolerance);
        } else if (base.str("bench") == "parallel_speedup") {
            compareParallel(basePath, base, curPath, cur, tolerance);
        } else {
            fail("%s: unrecognized benchmark artifact format",
                 basePath.c_str());
        }
    }
    if (failures > 0) {
        std::fprintf(stderr, "bench_compare: %d regression(s)\n", failures);
        return 1;
    }
    std::printf("bench_compare: all metrics within tolerance\n");
    return 0;
}
