// Benchmark trend report: fold a directory of historical BENCH_*.json
// artifacts into one markdown trajectory table per artifact.
//
//   bench_trajectory <history_dir> <output.md>
//
// <history_dir> holds one subdirectory per CI run (lexicographic order =
// chronological — CI names them run-<zero-padded run number>); each run
// directory is searched recursively for BENCH_*.json files, so both flat
// layouts and `gh run download`'s artifact-name subdirectories work.
// For every artifact name seen anywhere in the history the report shows
// a runs-down table of its headline metrics with per-run deltas, plus a
// first-to-last summary — the long-horizon view a single-baseline
// regression gate (bench_compare) cannot give. Runs where a speedup
// gate was skipped (core-starved runner; bench_compare writes the
// "speedup_gate_skipped" annotation) are marked, not silently mixed in.
//
// Metrics: artifacts with a "bench" field contribute their scalar
// headline numbers (speedup, wall_seconds_*, the serving harness's
// p2c/random tail percentiles); google-benchmark artifacts contribute
// per-benchmark cpu_time (capped at 6 columns — the report says what
// was dropped). A missing artifact in some run shows as "—". An
// artifact matching no known schema gets a per-file "unrecognized
// schema" warning on stderr plus a note in the report — never a silent
// empty row.
//
// Standard library only — this tool must build with a bare g++ in CI.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"

namespace fs = std::filesystem;
using benchjson::Json;
using benchjson::loadJson;

namespace {

/// Ordered headline metrics of one artifact instance.
using Metrics = std::vector<std::pair<std::string, double>>;

struct ArtifactRun {
    Metrics metrics;
    bool present = false;
    bool gateSkipped = false;
    std::string skipReason;
};

/// `recognized` reports whether the document matched a known schema at
/// all (a "bench"-tagged artifact carrying at least one known headline
/// key, or a google-benchmark artifact). An unrecognized artifact must
/// be *warned about*, not silently rendered as empty columns — that is
/// how a new BENCH_*.json silently falls out of the report.
Metrics extractMetrics(const Json& doc, int& droppedColumns,
                       bool& recognized) {
    Metrics out;
    recognized = false;
    if (doc.get("bench") != nullptr) {
        static const char* kHeadline[] = {
            "speedup", "wall_seconds_packet", "wall_seconds_hybrid",
            "wall_seconds_1_thread", "wall_seconds_parallel",
            "p2c_p99_slowdown", "random_p99_slowdown", "tail_win",
        };
        for (const char* key : kHeadline) {
            const Json* v = doc.get(key);
            if (v != nullptr && v->kind == Json::Number) {
                out.emplace_back(key, v->number);
            }
        }
        recognized = !out.empty();
        return out;
    }
    const Json* list = doc.get("benchmarks");
    if (list != nullptr && list->kind == Json::Array) {
        recognized = true;
        for (const Json& b : list->items) {
            if (b.str("run_type") != "iteration") continue;
            if (out.size() >= 6) {
                droppedColumns++;
                continue;
            }
            out.emplace_back(b.str("name") + " cpu ns", b.num("cpu_time"));
        }
    }
    return out;
}

std::string fmtValue(double v) {
    char buf[64];
    if (v == 0 || (std::abs(v) >= 0.01 && std::abs(v) < 100000)) {
        std::snprintf(buf, sizeof(buf), "%.3f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3g", v);
    }
    return buf;
}

std::string fmtDelta(double cur, double prev) {
    if (prev == 0) return "—";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (cur / prev - 1.0));
    return buf;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: bench_trajectory <history_dir> <output.md>\n");
        return 2;
    }
    const fs::path historyDir = argv[1];
    const std::string outPath = argv[2];
    std::error_code ec;
    if (!fs::is_directory(historyDir, ec)) {
        std::fprintf(stderr, "bench_trajectory: %s is not a directory\n",
                     historyDir.string().c_str());
        return 2;
    }

    std::vector<std::string> runs;
    for (const fs::directory_entry& e : fs::directory_iterator(historyDir)) {
        if (e.is_directory()) runs.push_back(e.path().filename().string());
    }
    std::sort(runs.begin(), runs.end());
    if (runs.empty()) {
        std::fprintf(stderr, "bench_trajectory: no run directories in %s\n",
                     historyDir.string().c_str());
        return 2;
    }

    // artifact name -> per-run series (indexed like `runs`).
    std::map<std::string, std::vector<ArtifactRun>> series;
    int droppedColumns = 0;
    int parseFailures = 0;
    int unrecognized = 0;
    for (size_t r = 0; r < runs.size(); r++) {
        for (const fs::directory_entry& e :
             fs::recursive_directory_iterator(historyDir / runs[r])) {
            const std::string name = e.path().filename().string();
            if (!e.is_regular_file() || name.rfind("BENCH_", 0) != 0 ||
                e.path().extension() != ".json") {
                continue;
            }
            Json doc;
            if (!loadJson(e.path().string(), doc)) {
                parseFailures++;
                continue;
            }
            std::vector<ArtifactRun>& runsOf = series[name];
            runsOf.resize(runs.size());
            ArtifactRun& slot = runsOf[r];
            slot.present = true;
            bool recognized = false;
            slot.metrics = extractMetrics(doc, droppedColumns, recognized);
            if (!recognized) {
                std::fprintf(stderr,
                             "bench_trajectory: %s: unrecognized schema — "
                             "no headline metrics extracted (teach "
                             "extractMetrics its keys)\n",
                             e.path().string().c_str());
                unrecognized++;
            }
            const Json* skipped = doc.get("speedup_gate_skipped");
            if (skipped != nullptr && skipped->kind == Json::Bool &&
                skipped->boolean) {
                slot.gateSkipped = true;
                slot.skipReason = doc.str("speedup_gate_skip_reason");
            }
        }
    }
    if (series.empty()) {
        std::fprintf(stderr,
                     "bench_trajectory: no BENCH_*.json artifacts under "
                     "%s\n", historyDir.string().c_str());
        return 2;
    }

    std::string md = "# Benchmark trajectory\n\n";
    {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%zu run(s), oldest first. Deltas are vs the "
                      "previous run carrying the metric.\n", runs.size());
        md += buf;
    }
    if (parseFailures > 0) {
        md += "\n> " + std::to_string(parseFailures) +
              " artifact file(s) failed to parse and were dropped.\n";
    }
    if (unrecognized > 0) {
        md += "\n> " + std::to_string(unrecognized) +
              " artifact file(s) had an unrecognized schema (no headline "
              "metrics extracted); their rows are empty.\n";
    }

    for (const auto& [artifact, perRun] : series) {
        md += "\n## " + artifact + "\n\n";
        // Column set: union of metric names, first-seen order.
        std::vector<std::string> columns;
        for (const ArtifactRun& ar : perRun) {
            for (const auto& [name, value] : ar.metrics) {
                (void)value;
                if (std::find(columns.begin(), columns.end(), name) ==
                    columns.end()) {
                    columns.push_back(name);
                }
            }
        }
        md += "| run |";
        for (const std::string& c : columns) md += " " + c + " | Δ |";
        md += " gate |\n|---|";
        for (size_t i = 0; i < columns.size(); i++) md += "---|---|";
        md += "---|\n";

        std::map<std::string, double> prev;  // last seen value per column
        std::map<std::string, double> first;
        for (size_t r = 0; r < perRun.size(); r++) {
            const ArtifactRun& ar = perRun[r];
            md += "| " + runs[r] + " |";
            for (const std::string& c : columns) {
                const auto it = std::find_if(
                    ar.metrics.begin(), ar.metrics.end(),
                    [&](const auto& kv) { return kv.first == c; });
                if (!ar.present || it == ar.metrics.end()) {
                    md += " — | — |";
                    continue;
                }
                md += " " + fmtValue(it->second) + " |";
                md += prev.count(c) != 0
                          ? " " + fmtDelta(it->second, prev[c]) + " |"
                          : " — |";
                prev[c] = it->second;
                first.emplace(c, it->second);
            }
            if (!ar.present) {
                md += " — |\n";
            } else if (ar.gateSkipped) {
                md += " skipped";
                if (!ar.skipReason.empty()) md += " (" + ar.skipReason + ")";
                md += " |\n";
            } else {
                md += " gated |\n";
            }
        }
        for (const std::string& c : columns) {
            if (first.count(c) != 0 && prev.count(c) != 0 &&
                first[c] != prev[c]) {
                md += "\nOver the window, " + c + ": " +
                      fmtValue(first[c]) + " → " + fmtValue(prev[c]) +
                      " (" + fmtDelta(prev[c], first[c]) + ").\n";
            }
        }
    }
    if (droppedColumns > 0) {
        md += "\n> " + std::to_string(droppedColumns) +
              " google-benchmark series dropped beyond the 6-column cap.\n";
    }

    std::ofstream out(outPath, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "bench_trajectory: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    out << md;
    std::printf("wrote %s: %zu artifact(s) across %zu run(s)\n",
                outPath.c_str(), series.size(), runs.size());
    return 0;
}
