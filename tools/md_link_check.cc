// Markdown link checker for the docs tree.
//
//   md_link_check <repo-root>
//
// Scans every .md file in the repo root and in docs/ for inline links and
// verifies that relative targets exist on disk (resolved against the
// linking file's directory; '#fragment' suffixes are stripped). External
// schemes (http/https/mailto) are only syntax-checked, so the check runs
// offline and deterministically. Exits 1 listing every broken link.
// Registered as the `docs_link_check` ctest and run by the CI docs job.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
    std::string target;
    size_t line;
};

// Extracts inline-link targets "[text](target)" from one markdown file.
// Good enough for this docs tree: skips fenced code blocks and inline
// code spans (per line — an unclosed backtick mutes the rest of its
// line), handles images and balanced parentheses inside targets,
// ignores reference-style definitions.
std::vector<Link> extractLinks(const fs::path& file) {
    std::vector<Link> links;
    std::ifstream in(file);
    std::string line;
    size_t lineNo = 0;
    bool inFence = false;
    while (std::getline(in, line)) {
        lineNo++;
        if (line.rfind("```", 0) == 0) {
            inFence = !inFence;
            continue;
        }
        if (inFence) continue;
        bool inCode = false;
        for (size_t i = 0; i < line.size(); i++) {
            if (line[i] == '`') {
                inCode = !inCode;
                continue;
            }
            if (inCode || line[i] != ']' || i + 1 >= line.size() ||
                line[i + 1] != '(') {
                continue;
            }
            // Match the closing ')' with paren counting, so targets like
            // "file_(v2).md" survive intact.
            int depth = 1;
            size_t close = i + 2;
            for (; close < line.size() && depth > 0; close++) {
                if (line[close] == '(') depth++;
                if (line[close] == ')') depth--;
            }
            if (depth != 0) continue;  // unterminated: not a link
            links.push_back({line.substr(i + 2, close - 1 - (i + 2)), lineNo});
        }
    }
    return links;
}

bool checkFile(const fs::path& file, const fs::path& root) {
    bool ok = true;
    for (const Link& link : extractLinks(file)) {
        std::string target = link.target;
        const size_t hash = target.find('#');
        if (hash != std::string::npos) target.erase(hash);
        if (target.empty()) continue;  // pure fragment: same-file anchor
        if (target.find("://") != std::string::npos ||
            target.rfind("mailto:", 0) == 0) {
            continue;  // external: syntax only
        }
        const fs::path resolved =
            target[0] == '/' ? root / target.substr(1)
                             : file.parent_path() / target;
        if (!fs::exists(resolved)) {
            std::fprintf(stderr, "%s:%zu: broken link -> %s\n",
                         file.c_str(), link.line, link.target.c_str());
            ok = false;
        }
    }
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: md_link_check <repo-root>\n");
        return 2;
    }
    const fs::path root = argv[1];
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "not a directory: %s\n", root.c_str());
        return 2;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(root)) {
        if (entry.is_regular_file() && entry.path().extension() == ".md") {
            files.push_back(entry.path());
        }
    }
    const fs::path docs = root / "docs";
    if (fs::is_directory(docs)) {
        for (const auto& entry : fs::recursive_directory_iterator(docs)) {
            if (entry.is_regular_file() && entry.path().extension() == ".md") {
                files.push_back(entry.path());
            }
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "no markdown files under %s\n", root.c_str());
        return 2;
    }
    bool ok = true;
    size_t checked = 0;
    for (const fs::path& f : files) {
        ok = checkFile(f, root) && ok;
        checked++;
    }
    std::printf("md_link_check: %zu files checked, %s\n", checked,
                ok ? "all links resolve" : "BROKEN LINKS FOUND");
    return ok ? 0 : 1;
}
