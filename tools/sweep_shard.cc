// Distributed-sweep work-unit CLI: plan a sharded sweep, merge the
// partial results, verify the merge against a single-machine run.
//
//   sweep_shard plan --sweep NAME --points N --shards K
//               [--base-seed S] [--derive-seeds] [--out manifest.json]
//     Emit a work-unit manifest: which global point indices each shard
//     runs (the positional i % K assignment) and the ready-to-paste
//     --shard=i/K args for the bench binaries. Deterministic: the
//     manifest is a pure function of its flags.
//
//   sweep_shard merge [--manifest manifest.json] [--out merged.json]
//               [--verify-against full.json] <shard.json...>
//     Reassemble shard results files (any order) into one full-coverage
//     results file. Fails on overlapping shards, duplicate or missing
//     points, or header mismatches (different sweep, grid size, seed
//     rule, or shard count); with --manifest, also on shards that do not
//     match the plan. --verify-against compares every per-point
//     fingerprint (and the whole-sweep fingerprint) against another
//     results file — typically an unsharded run — and fails on any
//     difference, which is the distributed-determinism gate CI uses.
//
//   sweep_shard fingerprint <results.json>
//     Print the canonical sweep fingerprint of a results file.
//
// Formats are documented in docs/BENCHMARKS.md and implemented in
// src/driver/sweep_shard.* (this binary links the homa library).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep_shard.h"

using namespace homa;

namespace {

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage: sweep_shard plan --sweep NAME --points N "
                 "--shards K [--base-seed S] [--derive-seeds] [--out FILE]\n"
                 "       sweep_shard merge [--manifest FILE] [--out FILE] "
                 "[--verify-against FILE] <shard.json...>\n"
                 "       sweep_shard fingerprint <results.json>\n");
    std::exit(2);
}

bool parseU64Flag(const char* text, uint64_t& out) {
    char* end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
}

ShardFile loadShardFileOrDie(const std::string& path) {
    std::string text, err;
    ShardFile f;
    if (!readTextFile(path, text)) {
        std::fprintf(stderr, "sweep_shard: cannot read %s\n", path.c_str());
        std::exit(1);
    }
    if (!parseShardFile(text, f, err)) {
        std::fprintf(stderr, "sweep_shard: %s: %s\n", path.c_str(),
                     err.c_str());
        std::exit(1);
    }
    return f;
}

int cmdPlan(int argc, char** argv) {
    ShardManifest m;
    std::string out;
    bool havePoints = false, haveShards = false;
    for (int i = 0; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) usage();
            return argv[++i];
        };
        if (arg == "--sweep") {
            m.sweep = value();
        } else if (arg == "--points") {
            if (!parseU64Flag(value(), m.totalPoints) ||
                m.totalPoints > kMaxSweepPoints) {
                std::fprintf(stderr,
                             "sweep_shard: --points must be in [0, %llu]\n",
                             static_cast<unsigned long long>(kMaxSweepPoints));
                usage();
            }
            havePoints = true;
        } else if (arg == "--shards") {
            uint64_t k = 0;
            if (!parseU64Flag(value(), k) || k < 1 || k > 1'000'000) usage();
            m.shardCount = static_cast<int>(k);
            haveShards = true;
        } else if (arg == "--base-seed") {
            if (!parseU64Flag(value(), m.baseSeed)) usage();
        } else if (arg == "--derive-seeds") {
            m.deriveSeeds = true;
        } else if (arg == "--out") {
            out = value();
        } else {
            usage();
        }
    }
    if (m.sweep.empty() || !havePoints || !haveShards) usage();
    const std::string text = writeShardManifest(m);
    if (out.empty()) {
        std::fputs(text.c_str(), stdout);
    } else if (!writeTextFile(out, text)) {
        std::fprintf(stderr, "sweep_shard: cannot write %s\n", out.c_str());
        return 1;
    } else {
        std::printf("wrote %s: %llu points over %d shards\n", out.c_str(),
                    static_cast<unsigned long long>(m.totalPoints),
                    m.shardCount);
    }
    return 0;
}

int cmdMerge(int argc, char** argv) {
    std::string out, manifestPath, verifyPath;
    std::vector<std::string> inputs;
    for (int i = 0; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) usage();
            return argv[++i];
        };
        if (arg == "--out") {
            out = value();
        } else if (arg == "--manifest") {
            manifestPath = value();
        } else if (arg == "--verify-against") {
            verifyPath = value();
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) usage();

    std::vector<ShardFile> shards;
    shards.reserve(inputs.size());
    for (const std::string& path : inputs) {
        shards.push_back(loadShardFileOrDie(path));
    }

    std::string err;
    if (!manifestPath.empty()) {
        std::string text;
        ShardManifest m;
        if (!readTextFile(manifestPath, text)) {
            std::fprintf(stderr, "sweep_shard: cannot read %s\n",
                         manifestPath.c_str());
            return 1;
        }
        if (!parseShardManifest(text, m, err)) {
            std::fprintf(stderr, "sweep_shard: %s: %s\n",
                         manifestPath.c_str(), err.c_str());
            return 1;
        }
        for (size_t k = 0; k < shards.size(); k++) {
            if (!shardMatchesManifest(m, shards[k], err)) {
                std::fprintf(stderr, "sweep_shard: %s: %s\n",
                             inputs[k].c_str(), err.c_str());
                return 1;
            }
        }
    }

    ShardFile merged;
    if (!mergeShardFiles(shards, merged, err)) {
        std::fprintf(stderr, "sweep_shard: merge failed: %s\n", err.c_str());
        return 1;
    }
    const std::string fp = sweepFingerprint(merged.points);
    std::printf("merged %zu shard files: sweep \"%s\", %zu points, "
                "fingerprint %s\n", shards.size(), merged.sweep.c_str(),
                merged.points.size(), fp.c_str());

    if (!verifyPath.empty()) {
        const ShardFile ref = loadShardFileOrDie(verifyPath);
        if (!sweepsIdentical(merged, ref, err)) {
            std::fprintf(stderr,
                         "sweep_shard: verify: %s\n"
                         "sweep_shard: merged sweep is NOT byte-identical "
                         "to %s\n", err.c_str(), verifyPath.c_str());
            return 1;
        }
        std::printf("verify: merged sweep identical to %s "
                    "(fingerprint %s)\n", verifyPath.c_str(), fp.c_str());
    }

    if (!out.empty()) {
        if (!writeTextFile(out,
                           writeShardFile(merged, benchCompatExtras(merged)))) {
            std::fprintf(stderr, "sweep_shard: cannot write %s\n",
                         out.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int cmdFingerprint(int argc, char** argv) {
    if (argc != 1) usage();
    const ShardFile f = loadShardFileOrDie(argv[0]);
    std::printf("%s\n", sweepFingerprint(f.points).c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    const std::string cmd = argv[1];
    if (cmd == "plan") return cmdPlan(argc - 2, argv + 2);
    if (cmd == "merge") return cmdMerge(argc - 2, argv + 2);
    if (cmd == "fingerprint") return cmdFingerprint(argc - 2, argv + 2);
    usage();
}
