// Quickstart: bring up a simulated cluster with Homa, send a few messages,
// and print what happened.
//
//   $ ./example_quickstart
//
// Walks through the three core objects: NetworkConfig (the cluster),
// HomaTransport::factory (the protocol), and Network (the simulation).
#include <cstdio>

#include "core/homa_transport.h"
#include "driver/oracle.h"
#include "sim/network.h"
#include "workload/workloads.h"

using namespace homa;

int main() {
    // 1. Describe the cluster: the paper's 144-host fat-tree (Figure 11).
    //    NetworkConfig::singleRack16() gives the small cluster instead.
    NetworkConfig cfg = NetworkConfig::fatTree144();
    const NetworkTimings timings = NetworkTimings::compute(cfg);
    std::printf("cluster: %d hosts, RTT %.2f us, RTTbytes %lld\n",
                cfg.hostCount(), toMicros(timings.rttSmallGrant),
                static_cast<long long>(timings.rttBytes));

    // 2. Pick a transport. Homa wants to know the workload so receivers can
    //    pre-compute unscheduled priority cutoffs (pass nullptr to let each
    //    receiver learn its workload online instead).
    HomaConfig homaCfg;  // paper defaults: 8 priorities, RTTbytes from topo
    TransportFactory factory =
        HomaTransport::factory(homaCfg, cfg, &workload(WorkloadId::W3));

    // 3. Build the network and hook the delivery callback.
    Network net(cfg, factory);
    Oracle oracle(cfg);
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo& info) {
        const Duration elapsed = info.completed - m.created;
        const Duration best = oracle.bestOneWay(m.length);
        std::printf(
            "  msg %llu: %u bytes %d->%d in %.2f us (best %.2f, slowdown "
            "%.2fx, %u packets)\n",
            static_cast<unsigned long long>(m.id), m.length, m.src, m.dst,
            toMicros(elapsed), toMicros(best),
            static_cast<double>(elapsed) / static_cast<double>(best),
            info.packetsReceived);
    });

    // 4. Send messages: a tiny RPC-sized one, one around RTTbytes, and a
    //    1 MB bulk transfer, all at once from different senders.
    std::printf("sending 3 messages...\n");
    for (uint32_t size : {100u, 10000u, 1000000u}) {
        Message m;
        m.id = net.nextMsgId();
        m.src = static_cast<HostId>(size % 16);
        m.dst = 143;
        m.length = size;
        net.sendMessage(m);
    }

    // 5. Run the event loop until everything is delivered.
    net.loop().run();
    std::printf("done at t=%.2f us after %llu events\n",
                toMicros(net.loop().now()),
                static_cast<unsigned long long>(net.loop().executedEvents()));
    return 0;
}
