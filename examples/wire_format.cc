// The on-the-wire header codec: what a Homa packet actually looks like as
// bytes. Encodes each packet type, hex-dumps it, and round-trips it back.
#include <cstdio>

#include "wire/checksum.h"
#include "wire/header.h"

using namespace homa;

namespace {

void hexdump(std::span<const std::byte> data) {
    for (size_t i = 0; i < data.size(); i += 16) {
        std::printf("  %04zx  ", i);
        for (size_t j = i; j < i + 16 && j < data.size(); j++) {
            std::printf("%02x ", static_cast<unsigned>(data[j]));
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    std::printf("Homa wire header: %zu bytes, CRC-32C protected\n\n",
                wire::kWireHeaderSize);

    // A full-size DATA packet mid-message.
    Packet data;
    data.type = PacketType::Data;
    data.src = 12;
    data.dst = 131;
    data.msg = 0xDEADBEEF;
    data.offset = 14420;
    data.length = 1442;
    data.messageLength = 500000;
    data.priority = 2;  // scheduled level from the latest GRANT

    // The GRANT that authorized it.
    Packet grant;
    grant.type = PacketType::Grant;
    grant.src = 131;
    grant.dst = 12;
    grant.msg = 0xDEADBEEF;
    grant.grantOffset = 14420 + 9700;
    grant.grantPriority = 2;
    grant.priority = kHighestPriority;

    for (const Packet* p : {&data, &grant}) {
        std::array<std::byte, wire::kWireHeaderSize> buf;
        wire::encodeHeader(*p, buf);
        std::printf("%s %s\n", packetTypeName(p->type), p->summary().c_str());
        hexdump(buf);
        auto back = wire::decodeHeader(buf);
        std::printf("  round-trip: %s\n\n",
                    back.has_value() ? "ok (CRC valid)" : "FAILED");
    }

    // Corruption is detected.
    std::array<std::byte, wire::kWireHeaderSize> buf;
    wire::encodeHeader(data, buf);
    buf[20] ^= std::byte{0x01};
    std::printf("after flipping one bit: decode %s\n",
                wire::decodeHeader(buf).has_value() ? "ACCEPTED (bad!)"
                                                    : "rejected (CRC mismatch)");
    return 0;
}
