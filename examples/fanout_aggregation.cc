// Scatter-gather (search-style fan-out) with incast control.
//
// A root server fans a query out to many leaf servers and aggregates their
// answers — the classic partition/aggregate datacenter pattern whose
// response wave is the worst-case incast (§3.6). We compare Homa with and
// without incast control under a large fan-out and report per-query
// completion latency and retry counts.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/rpc.h"
#include "stats/percentile.h"
#include "workload/workloads.h"

using namespace homa;

namespace {

struct QueryStats {
    Samples latencyUs;
    uint64_t retries = 0;
};

QueryStats runFanout(bool incastControl, int fanout, int queries) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    cfg.switchQdisc = [] {
        StrictPriorityOptions o;
        o.capBytes = 1 << 20;  // finite buffers so uncontrolled incast hurts
        return std::make_unique<StrictPriorityQdisc>(o);
    };
    HomaConfig homaCfg;
    homaCfg.incastControl = incastControl;
    Network net(cfg, HomaTransport::factory(homaCfg, cfg,
                                            &workload(WorkloadId::W2)));

    std::vector<std::unique_ptr<RpcEndpoint>> eps;
    for (HostId h = 0; h < net.hostCount(); h++) {
        eps.push_back(std::make_unique<RpcEndpoint>(net, h));
        eps.back()->setHandler([](const Message&) { return 8000u; });
    }

    QueryStats stats;
    Rng rng(7);
    int remaining = queries;

    std::function<void()> runQuery = [&] {
        if (remaining-- <= 0) return;
        auto pending = std::make_shared<int>(fanout);
        auto started = std::make_shared<Time>(net.loop().now());
        for (int i = 0; i < fanout; i++) {
            const HostId leaf =
                static_cast<HostId>(1 + rng.below(net.hostCount() - 1));
            eps[0]->call(leaf, 64,
                         [&, pending, started](RpcId, uint32_t, uint32_t,
                                               Duration) {
                             if (--*pending == 0) {
                                 stats.latencyUs.add(
                                     toMicros(net.loop().now() - *started));
                                 runQuery();
                             }
                         });
        }
    };
    runQuery();
    net.loop().run();
    stats.retries = eps[0]->stats().retries;
    return stats;
}

}  // namespace

int main() {
    std::printf("scatter-gather on Homa: root + N leaves, 8KB answers\n\n");
    std::printf("%-8s %-22s %-22s\n", "fanout", "incast control ON",
                "incast control OFF");
    std::printf("%-8s %-10s %-11s %-10s %-11s\n", "", "p99 (us)", "retries",
                "p99 (us)", "retries");
    for (int fanout : {16, 64, 128}) {
        QueryStats on = runFanout(true, fanout, 60);
        QueryStats off = runFanout(false, fanout, 60);
        std::printf("%-8d %-10.1f %-11llu %-10.1f %-11llu\n", fanout,
                    on.latencyUs.percentile(0.99),
                    static_cast<unsigned long long>(on.retries),
                    off.latencyUs.percentile(0.99),
                    static_cast<unsigned long long>(off.retries));
    }
    std::printf(
        "\nWith incast control the response wave is mostly scheduled, so\n"
        "buffers stay bounded; without it large fan-outs overflow the\n"
        "switch and pay retransmission timeouts.\n");
    return 0;
}
