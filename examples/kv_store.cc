// A memcached-style key-value service on Homa RPCs — the workload that
// motivates the paper (W1 is Facebook's memcached traffic).
//
// Eight client hosts fire GET/SET requests at eight server hosts and we
// report the latency distribution. GETs have tiny requests and value-sized
// responses; SETs the reverse — the common datacenter pattern where one
// side of every RPC is tiny (§2.1).
#include <cstdio>
#include <map>
#include <vector>

#include "core/rpc.h"
#include "driver/oracle.h"
#include "stats/percentile.h"
#include "workload/workloads.h"

using namespace homa;

int main() {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory(HomaConfig{}, cfg,
                                            &workload(WorkloadId::W1)));

    // RPC endpoints everywhere; hosts 8..15 act as servers.
    std::vector<std::unique_ptr<RpcEndpoint>> eps;
    for (HostId h = 0; h < net.hostCount(); h++) {
        eps.push_back(std::make_unique<RpcEndpoint>(net, h));
    }

    // Server handler: interpret request length as the operation. SETs
    // (large requests) store and return a small ack; GETs return a value
    // whose size is drawn from the W1 value distribution by the client and
    // encoded in the request size (a real implementation would parse the
    // payload; sizes are what matter for transport behaviour).
    for (HostId h = 8; h < 16; h++) {
        eps[h]->setHandler([](const Message& req) -> uint32_t {
            if (req.length > 512) return 16;     // SET -> small ack
            return 64 + (req.id % 1400);         // GET -> value
        });
    }

    Samples getLatency, setLatency;
    Rng rng(2026);
    const SizeDistribution& values = workload(WorkloadId::W1);
    int outstanding = 0;
    int remaining = 4000;

    std::function<void(HostId)> fire = [&](HostId client) {
        if (remaining == 0) return;
        remaining--;
        outstanding++;
        const bool isSet = rng.chance(0.1);  // 90/10 read-heavy mix
        const uint32_t reqSize =
            isSet ? 512 + values.sample(rng) : 32;
        const HostId server = static_cast<HostId>(8 + rng.below(8));
        eps[client]->call(server, reqSize,
                          [&, isSet, client](RpcId, uint32_t, uint32_t,
                                             Duration elapsed) {
                              (isSet ? setLatency : getLatency)
                                  .add(toMicros(elapsed));
                              outstanding--;
                              fire(client);  // closed loop per client
                          });
    };
    for (HostId c = 0; c < 8; c++) {
        for (int depth = 0; depth < 4; depth++) fire(c);
    }
    net.loop().run();

    auto report = [](const char* op, const Samples& s) {
        std::printf("%-4s n=%-6zu p50=%6.2f us  p90=%6.2f us  p99=%6.2f us\n",
                    op, s.count(), s.percentile(0.50), s.percentile(0.90),
                    s.percentile(0.99));
    };
    std::printf("key-value store over Homa, 8 clients x depth 4, 16 hosts:\n");
    report("GET", getLatency);
    report("SET", setLatency);
    return 0;
}
