// Command-line experiment runner: the repo's Swiss-army knife.
//
//   example_run_experiment --workload W3 --protocol Homa --load 0.8 --window-ms 10
//
// plus optional knobs: [--seed N] [--wire-priorities N] [--sched K]
// [--unsched K] [--cutoff BYTES] [--unsched-bytes N] [--reservation F]
// [--grant-policy srpt|fifo|rr|unlimited] [--single-rack] [--wasted-bw]
// and scenario selection: [--pattern NAME] [--hotspots N]
// [--hotspot-degree N] [--hotspot-fraction F] [--rack-local F]
// [--pareto-alpha F] [--trace FILE]
//
// Prints the slowdown-by-decile table, utilization, queue occupancy, and
// priority usage for any protocol/workload/parameter combination — every
// figure in bench/ is a scripted set of these runs.
#include <algorithm>
#include <cstring>
#include <string>

#include "driver/experiment.h"
#include "driver/rpc_experiment.h"
#include "stats/report.h"

using namespace homa;

namespace {

[[noreturn]] void usage() {
    std::fprintf(
        stderr,
        "usage: example_run_experiment [options]\n"
        "  --workload W1..W5       message size distribution (default W3)\n"
        "  --protocol NAME         Homa|Basic|pHost|PIAS|pFabric|NDP|\n"
        "                          Stream-SC|Stream-MC (default Homa)\n"
        "  --load F                offered load fraction (default 0.8)\n"
        "  --window-ms N           traffic generation window (default 10)\n"
        "  --seed N                RNG seed (default 99)\n"
        "  --sim-threads N         parallel engine: shard the simulation\n"
        "                          across N threads (default 1 = serial;\n"
        "                          results are identical either way)\n"
        "  --single-rack           16-host cluster instead of the fat-tree\n"
        "  --topo SPEC             topology override, comma-separated k=v:\n"
        "                          racks, hosts (per rack), aggr (per pod),\n"
        "                          core, oversub, pods — e.g.\n"
        "                          'racks=8,hosts=4,aggr=2,core=2,oversub=4'\n"
        "                          (core>0 adds a third tier; see\n"
        "                          docs/SCENARIOS.md)\n"
        "  --pattern NAME          uniform|permutation|rack-skew|incast|\n"
        "                          pareto|trace|closed-loop (default uniform)\n"
        "  --hotspots N            incast: number of hot receivers\n"
        "  --hotspot-degree N      incast: fan-in senders per hotspot\n"
        "  --hotspot-fraction F    incast: sender traffic share to hotspot\n"
        "  --rack-local F          rack-skew: intra-rack fraction\n"
        "  --pareto-alpha F        pareto: sender popularity exponent\n"
        "  --trace FILE            trace replay: '<us> <src> <dst> <bytes>'\n"
        "  --window N              closed-loop: outstanding messages per\n"
        "                          host (default 4; --load is ignored)\n"
        "  --think-us F            closed-loop: mean think time before the\n"
        "                          next message (default 0)\n"
        "  --dag-fanout N          dag: children per internal node (8)\n"
        "  --dag-depth N           dag: fan-out levels below the root (2)\n"
        "  --dag-window N          dag: trees outstanding per root (1)\n"
        "  --dag-roots N           dag: coordinator hosts (0 = all)\n"
        "  --dag-req BYTES         dag: request size per edge (320)\n"
        "  --dag-stage-sizes LIST  dag: per-stage response bytes, comma-\n"
        "                          separated root-to-leaf (default: sample\n"
        "                          the workload distribution per node)\n"
        "  --dag-join F            dag: fraction of depth>=2 nodes that\n"
        "                          gain a second parent one stage up (0;\n"
        "                          turns the trees into general DAGs)\n"
        "  --dag-straggler F       dag: straggler fraction of leaves (0)\n"
        "  --dag-straggler-factor F  dag: straggler size multiplier (10)\n"
        "  --on-off                ON-OFF bursts: modulate any pattern with\n"
        "                          per-host burst/idle periods\n"
        "  --on-us F / --off-us F  mean burst / idle duration (100 / 300)\n"
        "  --on-off-dist NAME      period distribution: exp|pareto\n"
        "  --on-off-shape F        pareto period shape (> 1, default 1.5)\n"
        "  --fault SPEC            inject a fault (repeatable), e.g.\n"
        "                          'flap=aggr0,at=5ms,for=1ms',\n"
        "                          'kill=aggr1,at=3ms',\n"
        "                          'degrade=host3,at=1ms,for=5ms,bw=0.5,\n"
        "                          delay=10us,drop=0.01',\n"
        "                          'flap-train=aggr2,count=5,gap=2ms,\n"
        "                          for=500us' (see docs/SCENARIOS.md)\n"
        "  --ecmp                  deterministic per-message ECMP uplink\n"
        "                          hash over alive uplinks (default: the\n"
        "                          paper's per-packet spraying)\n"
        "  --fluid BYTES           fluid fast path: simulate messages of\n"
        "                          >= BYTES as flow-level fluid transfers\n"
        "                          (0 = everything fluid; default: all\n"
        "                          packet-level). Not combinable with\n"
        "                          --fault; fluid runs are always serial\n"
        "  --tenants SPEC          multi-tenant serving mode (runs the RPC\n"
        "                          harness): ';'-separated tenants of comma\n"
        "                          k=v — name, wl (W1..W5), mode\n"
        "                          (open|closed), load, window, think_us,\n"
        "                          clients, group — e.g. 'name=web,wl=W1,\n"
        "                          load=0.6,clients=4;name=batch,wl=W5,\n"
        "                          mode=closed,window=8,clients=2'\n"
        "  --replicas SPEC         replica groups for --tenants:\n"
        "                          ';'-separated groups of comma k=v —\n"
        "                          name, n (replicas; 0 = rest), lb\n"
        "                          (rr|random|p2c), hedge (off|pNN),\n"
        "                          hedge_floor_us, hedge_min\n"
        "                          (see docs/SCENARIOS.md)\n"
        "  Homa knobs: --wire-priorities N, --sched N, --unsched N,\n"
        "              --cutoff BYTES, --unsched-bytes N, --reservation F,\n"
        "              --overcommit N, --no-incast-control,\n"
        "              --grant-policy srpt|fifo|rr|unlimited\n"
        "  --wasted-bw             sample the Figure 16 wasted-bw probe\n");
    std::exit(2);
}

// Strict numeric parsing for the --dag-* flags (range checks happen once
// on the assembled config via validateDagConfig): a typo gets the usage
// message, not an uncaught std::stoi exception.
void dagInt(const std::string& flag, const std::string& val, int& out) {
    if (!parseDagInt(val, out)) {
        std::fprintf(stderr, "%s: expected an integer, got '%s'\n",
                     flag.c_str(), val.c_str());
        usage();
    }
}

void dagDouble(const std::string& flag, const std::string& val, double& out) {
    if (!parseDagDouble(val, out)) {
        std::fprintf(stderr, "%s: expected a number, got '%s'\n",
                     flag.c_str(), val.c_str());
        usage();
    }
}

Protocol parseProtocol(const std::string& s) {
    for (Protocol p : {Protocol::Homa, Protocol::Basic, Protocol::PHost,
                       Protocol::Pias, Protocol::PFabric, Protocol::Ndp,
                       Protocol::StreamSC, Protocol::StreamMC}) {
        if (s == protocolName(p)) return p;
    }
    std::fprintf(stderr, "unknown protocol: %s\n", s.c_str());
    usage();
}

}  // namespace

int main(int argc, char** argv) {
    ExperimentConfig cfg;
    cfg.traffic.stop = milliseconds(10);

    int sched = 0, unsched = 0;
    bool closedLoopFlagSeen = false, onOffKnobSeen = false;
    bool dagFlagSeen = false, traceSeen = false, patternSeen = false;
    bool singleRackSeen = false;
    bool tenantsSeen = false, replicasSeen = false;
    ServingConfig servingCfg;
    std::string topoSpec;
    TrafficPatternKind explicitPattern = TrafficPatternKind::Uniform;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage();
            return argv[++i];
        };
        if (arg == "--workload") {
            cfg.traffic.workload = workloadFromName(next());
        } else if (arg == "--protocol") {
            cfg.proto.kind = parseProtocol(next());
        } else if (arg == "--load") {
            cfg.traffic.load = std::stod(next());
        } else if (arg == "--window-ms") {
            cfg.traffic.stop = milliseconds(std::stol(next()));
        } else if (arg == "--seed") {
            cfg.traffic.seed = std::stoull(next());
        } else if (arg == "--sim-threads") {
            cfg.parallel.threads = std::stoi(next());
        } else if (arg == "--single-rack") {
            cfg.net = NetworkConfig::singleRack16();
            singleRackSeen = true;
        } else if (arg == "--topo") {
            topoSpec = next();
        } else if (arg == "--pattern") {
            const std::string name = next();
            if (!patternFromName(name, cfg.traffic.scenario.kind)) {
                std::fprintf(stderr, "unknown pattern: %s\n", name.c_str());
                usage();
            }
            patternSeen = true;
            explicitPattern = cfg.traffic.scenario.kind;
        } else if (arg == "--hotspots") {
            cfg.traffic.scenario.hotspots = std::stoi(next());
        } else if (arg == "--hotspot-degree") {
            cfg.traffic.scenario.hotspotDegree = std::stoi(next());
        } else if (arg == "--hotspot-fraction") {
            cfg.traffic.scenario.hotspotFraction = std::stod(next());
        } else if (arg == "--rack-local") {
            cfg.traffic.scenario.rackLocalFraction = std::stod(next());
        } else if (arg == "--pareto-alpha") {
            cfg.traffic.scenario.paretoAlpha = std::stod(next());
        } else if (arg == "--trace") {
            cfg.traffic.scenario.kind = TrafficPatternKind::TraceReplay;
            cfg.traffic.scenario.tracePath = next();
            traceSeen = true;
        } else if (arg == "--dag-fanout") {
            dagInt(arg, next(), cfg.traffic.scenario.dag.fanout);
            dagFlagSeen = true;
        } else if (arg == "--dag-depth") {
            dagInt(arg, next(), cfg.traffic.scenario.dag.depth);
            dagFlagSeen = true;
        } else if (arg == "--dag-window") {
            dagInt(arg, next(), cfg.traffic.scenario.dag.window);
            dagFlagSeen = true;
        } else if (arg == "--dag-roots") {
            dagInt(arg, next(), cfg.traffic.scenario.dag.roots);
            dagFlagSeen = true;
        } else if (arg == "--dag-req") {
            const std::string val = next();
            if (!parseDagBytes(val, cfg.traffic.scenario.dag.requestBytes)) {
                std::fprintf(stderr,
                             "--dag-req: expected bytes in [1, 2^32), got "
                             "'%s'\n", val.c_str());
                usage();
            }
            dagFlagSeen = true;
        } else if (arg == "--dag-stage-sizes") {
            // "16000,2000" is the spec grammar's resp=16000/2000; reuse
            // its validating parser instead of hand-rolling one.
            std::string list = next();
            for (char& c : list) {
                if (c == ',') c = '/';
            }
            DagConfig parsed;
            if (!parseDagSpec("resp=" + list, parsed)) {
                std::fprintf(stderr,
                             "--dag-stage-sizes: expected a comma-"
                             "separated byte list (each in [1, 2^32)), "
                             "got '%s'\n", list.c_str());
                usage();
            }
            cfg.traffic.scenario.dag.stageResponseBytes =
                std::move(parsed.stageResponseBytes);
            dagFlagSeen = true;
        } else if (arg == "--dag-join") {
            dagDouble(arg, next(), cfg.traffic.scenario.dag.joinFraction);
            dagFlagSeen = true;
        } else if (arg == "--dag-straggler") {
            dagDouble(arg, next(),
                      cfg.traffic.scenario.dag.stragglerFraction);
            dagFlagSeen = true;
        } else if (arg == "--dag-straggler-factor") {
            dagDouble(arg, next(), cfg.traffic.scenario.dag.stragglerFactor);
            dagFlagSeen = true;
        } else if (arg == "--window") {
            cfg.traffic.scenario.closedLoopWindow = std::stoi(next());
            closedLoopFlagSeen = true;
        } else if (arg == "--think-us") {
            cfg.traffic.scenario.thinkTime = static_cast<Duration>(
                std::stod(next()) * static_cast<double>(kMicrosecond));
            closedLoopFlagSeen = true;
        } else if (arg == "--on-off") {
            cfg.traffic.scenario.onOff.enabled = true;
        } else if (arg == "--on-us") {
            cfg.traffic.scenario.onOff.onMean = static_cast<Duration>(
                std::stod(next()) * static_cast<double>(kMicrosecond));
            onOffKnobSeen = true;
        } else if (arg == "--off-us") {
            cfg.traffic.scenario.onOff.offMean = static_cast<Duration>(
                std::stod(next()) * static_cast<double>(kMicrosecond));
            onOffKnobSeen = true;
        } else if (arg == "--on-off-dist") {
            const std::string name = next();
            if (!onOffDistFromName(name, cfg.traffic.scenario.onOff.dist)) {
                std::fprintf(stderr, "unknown on-off dist: %s\n", name.c_str());
                usage();
            }
            onOffKnobSeen = true;
        } else if (arg == "--on-off-shape") {
            cfg.traffic.scenario.onOff.paretoShape = std::stod(next());
            onOffKnobSeen = true;
        } else if (arg == "--fault") {
            const std::string spec = next();
            FaultSpec fault;
            std::string err;
            if (!parseFaultSpec(spec, fault, &err)) {
                std::fprintf(stderr, "--fault '%s': %s\n", spec.c_str(),
                             err.c_str());
                usage();
            }
            cfg.traffic.scenario.faults.push_back(fault);
        } else if (arg == "--ecmp") {
            cfg.traffic.scenario.ecmpUplinks = true;
        } else if (arg == "--fluid") {
            const std::string val = next();
            if (val.empty() ||
                val.find_first_not_of("0123456789") != std::string::npos) {
                std::fprintf(stderr,
                             "--fluid: expected a non-negative byte "
                             "threshold, got '%s'\n", val.c_str());
                usage();
            }
            cfg.fluidThresholdBytes = std::stoll(val);
        } else if (arg == "--tenants") {
            const std::string spec = next();
            std::string terr;
            if (!parseTenantsSpec(spec, servingCfg.tenants, &terr)) {
                std::fprintf(stderr, "--tenants '%s': %s\n", spec.c_str(),
                             terr.c_str());
                usage();
            }
            tenantsSeen = true;
        } else if (arg == "--replicas") {
            const std::string spec = next();
            std::string rerr;
            if (!parseReplicasSpec(spec, servingCfg.groups, &rerr)) {
                std::fprintf(stderr, "--replicas '%s': %s\n", spec.c_str(),
                             rerr.c_str());
                usage();
            }
            replicasSeen = true;
        } else if (arg == "--wire-priorities") {
            cfg.proto.homa.wirePriorities = std::stoi(next());
        } else if (arg == "--sched") {
            sched = std::stoi(next());
        } else if (arg == "--unsched") {
            unsched = std::stoi(next());
        } else if (arg == "--cutoff") {
            cfg.proto.homa.explicitCutoffs.push_back(
                static_cast<uint32_t>(std::stoul(next())));
        } else if (arg == "--unsched-bytes") {
            cfg.proto.homa.unschedBytesLimit = std::stoll(next());
        } else if (arg == "--reservation") {
            cfg.proto.homa.oldestReservation = std::stod(next());
        } else if (arg == "--overcommit") {
            cfg.proto.homa.overcommitDegree = std::stoi(next());
        } else if (arg == "--grant-policy") {
            const std::string name = next();
            bool found = false;
            for (GrantPolicy p : {GrantPolicy::Srpt, GrantPolicy::Fifo,
                                  GrantPolicy::RoundRobin,
                                  GrantPolicy::Unlimited}) {
                if (name == grantPolicyName(p)) {
                    cfg.proto.homa.grantPolicy = p;
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown grant policy: %s\n", name.c_str());
                usage();
            }
        } else if (arg == "--no-incast-control") {
            cfg.proto.homa.incastControl = false;
        } else if (arg == "--wasted-bw") {
            cfg.measureWastedBandwidth = true;
        } else {
            usage();
        }
    }
    const bool dagMode = cfg.traffic.scenario.kind == TrafficPatternKind::Dag;
    if (replicasSeen && !tenantsSeen) {
        std::fprintf(stderr,
                     "--replicas needs --tenants: replica groups without "
                     "tenants serve nobody\n");
        usage();
    }
    if (tenantsSeen) {
        // Serving mode runs the RPC harness: tenants own the arrival
        // processes and destinations, so every message-level traffic
        // shaping flag would be silently ignored — reject instead.
        if (traceSeen) {
            std::fprintf(stderr,
                         "--tenants contradicts --trace: tenants issue "
                         "their own RPCs, a replayed schedule cannot — "
                         "pick one\n");
            usage();
        }
        if (dagMode || dagFlagSeen) {
            std::fprintf(stderr,
                         "--tenants contradicts --dag-*/--pattern dag: "
                         "serving mode and dag mode are separate RPC "
                         "harnesses — pick one\n");
            usage();
        }
        if (patternSeen) {
            std::fprintf(stderr,
                         "--tenants contradicts --pattern %s: tenant "
                         "configs own destination choice and arrival "
                         "modes\n",
                         patternName(explicitPattern));
            usage();
        }
        if (closedLoopFlagSeen) {
            std::fprintf(stderr,
                         "--window/--think-us do not apply to --tenants: "
                         "use per-tenant 'mode=closed,window=N,think_us=F' "
                         "in the tenant spec\n");
            usage();
        }
        if (cfg.traffic.scenario.onOff.enabled || onOffKnobSeen) {
            std::fprintf(stderr,
                         "--on-off does not compose with --tenants: each "
                         "tenant carries its own arrival mode\n");
            usage();
        }
        if (!cfg.traffic.scenario.faults.empty()) {
            std::fprintf(stderr,
                         "--tenants does not compose with --fault: the "
                         "serving harness's call ledgers assume a "
                         "fault-free fabric\n");
            usage();
        }
        if (cfg.fluidThresholdBytes >= 0) {
            std::fprintf(stderr,
                         "--tenants does not compose with --fluid: serving "
                         "runs account per RPC on the packet engine\n");
            usage();
        }
        if (cfg.traffic.scenario.ecmpUplinks) {
            std::fprintf(stderr,
                         "--ecmp does not apply to --tenants: the RPC "
                         "harness runs the paper's per-packet spraying\n");
            usage();
        }
        if (cfg.measureWastedBandwidth) {
            std::fprintf(stderr,
                         "--wasted-bw does not apply to --tenants: the "
                         "wasted-bandwidth probe is message-level\n");
            usage();
        }
    }
    if (cfg.traffic.scenario.kind == TrafficPatternKind::TraceReplay &&
        cfg.traffic.scenario.tracePath.empty()) {
        std::fprintf(stderr,
                     "pattern 'trace' needs a schedule: use --trace FILE\n");
        usage();
    }
    if (cfg.traffic.scenario.kind == TrafficPatternKind::TraceReplay &&
        cfg.traffic.scenario.onOff.enabled) {
        std::fprintf(stderr,
                     "--on-off does not compose with trace replay (the "
                     "trace carries its own timing)\n");
        usage();
    }
    if (traceSeen && (dagMode || dagFlagSeen)) {
        std::fprintf(stderr,
                     "--dag-* flags contradict --trace: a replayed "
                     "schedule has no request trees — pick one\n");
        usage();
    }
    if (traceSeen && patternSeen &&
        explicitPattern != TrafficPatternKind::TraceReplay) {
        std::fprintf(stderr,
                     "--trace contradicts --pattern %s: the replayed "
                     "schedule dictates the traffic — drop one\n",
                     patternName(explicitPattern));
        usage();
    }
    if (dagFlagSeen && !dagMode) {
        std::fprintf(stderr,
                     "--dag-* flags need --pattern dag (current pattern: "
                     "%s)\n", patternName(cfg.traffic.scenario.kind));
        usage();
    }
    if (cfg.traffic.scenario.closedLoopWindow < 1) {
        std::fprintf(stderr, "--window must be >= 1\n");
        usage();
    }
    if (closedLoopFlagSeen &&
        cfg.traffic.scenario.kind != TrafficPatternKind::ClosedLoop) {
        std::fprintf(stderr,
                     dagMode ? "--window/--think-us only apply to "
                               "--pattern closed-loop; dag trees are "
                               "windowed with --dag-window\n"
                             : "--window/--think-us only apply to "
                               "--pattern closed-loop\n");
        usage();
    }
    if (dagMode) {
        if (const char* err = validateDagConfig(cfg.traffic.scenario.dag)) {
            std::fprintf(stderr, "bad dag config: %s\n", err);
            usage();
        }
    }
    if (!topoSpec.empty()) {
        if (singleRackSeen) {
            std::fprintf(stderr,
                         "--topo contradicts --single-rack: pick one way to "
                         "name the topology\n");
            usage();
        }
        std::string terr;
        if (!parseTopoSpec(topoSpec, cfg.net, &terr)) {
            std::fprintf(stderr, "--topo '%s': %s\n", topoSpec.c_str(),
                         terr.c_str());
            usage();
        }
    }
    // Fault targets check against the *final* topology (--single-rack or
    // --topo may come before or after --fault on the command line).
    for (const FaultSpec& fault : cfg.traffic.scenario.faults) {
        const std::string err = validateFaultSpec(fault, cfg.net);
        if (!err.empty()) {
            std::fprintf(stderr, "--fault '%s': %s\n",
                         faultSpecToString(fault).c_str(), err.c_str());
            usage();
        }
    }
    if (cfg.fluidThresholdBytes >= 0 && !cfg.traffic.scenario.faults.empty()) {
        std::fprintf(stderr,
                     "--fluid contradicts --fault: fluid flows bypass the "
                     "switches faults act on — pick one\n");
        usage();
    }
    if (cfg.traffic.scenario.ecmpUplinks && cfg.net.singleRack()) {
        std::fprintf(stderr,
                     "--ecmp contradicts --single-rack: a single rack has "
                     "no uplinks to hash across\n");
        usage();
    }
    if (onOffKnobSeen && !cfg.traffic.scenario.onOff.enabled) {
        std::fprintf(stderr,
                     "--on-us/--off-us/--on-off-dist/--on-off-shape need "
                     "--on-off\n");
        usage();
    }
    if (cfg.traffic.scenario.onOff.enabled &&
        (cfg.traffic.scenario.onOff.onMean <= 0 ||
         cfg.traffic.scenario.onOff.offMean < 0 ||
         (cfg.traffic.scenario.onOff.dist == OnOffDist::Pareto &&
          cfg.traffic.scenario.onOff.paretoShape <= 1.0))) {
        std::fprintf(stderr,
                     "--on-us must be > 0, --off-us >= 0, and the pareto "
                     "shape > 1\n");
        usage();
    }
    if (unsched > 0) cfg.proto.homa.unschedPriorities = unsched;
    if (sched > 0) {
        cfg.proto.homa.logicalPriorities =
            sched + std::max(1, cfg.proto.homa.unschedPriorities);
        if (cfg.proto.homa.unschedPriorities == 0) {
            cfg.proto.homa.unschedPriorities = 1;
            cfg.proto.homa.logicalPriorities = sched + 1;
        }
    }

    if (tenantsSeen) {
        RpcExperimentConfig rc;
        // The RPC harness defaults to the paper's single-switch cluster
        // (§5.1); --topo / --single-rack override it like everywhere else.
        rc.net = (singleRackSeen || !topoSpec.empty())
                     ? cfg.net
                     : NetworkConfig::singleRack16();
        rc.proto = cfg.proto;
        rc.seed = cfg.traffic.seed;
        rc.stop = cfg.traffic.stop;
        rc.parallel = cfg.parallel;
        rc.serving = servingCfg;
        const std::string why =
            validateServingConfig(rc.serving, rc.net.hostCount());
        if (!why.empty()) {
            std::fprintf(stderr, "bad serving config: %s\n", why.c_str());
            usage();
        }
        const auto groups = rc.serving.effectiveGroups();
        std::printf(
            "%s on %s, serving %zu tenants (%d clients), window %.0f ms, "
            "seed %llu\n",
            protocolName(rc.proto.kind), topologySummary(rc.net).c_str(),
            rc.serving.tenants.size(), rc.serving.totalClients(),
            toSeconds(rc.stop) * 1e3,
            static_cast<unsigned long long>(rc.seed));
        std::printf("replica groups: %s\n\n",
                    replicasSpecToString(groups).c_str());

        RpcExperimentResult r = runRpcExperiment(rc);

        Table t({"tenant", "mode", "clients", "ops", "ops/s", "Gbps",
                 "p50 us", "p99 us", "slow p99", "hedged", "won"});
        for (size_t i = 0; i < rc.serving.tenants.size(); i++) {
            const TenantConfig& tc = rc.serving.tenants[i];
            const int ti = static_cast<int>(i);
            const TenantHedgeStats& h = r.tenants->hedges(ti);
            t.addRow({tc.name, arrivalModeName(tc.mode),
                      std::to_string(tc.clients),
                      std::to_string(r.tenants->completed(ti)),
                      std::to_string(
                          static_cast<long long>(r.tenants->opsPerSec(ti))),
                      Table::num(r.tenants->gbps(ti)),
                      Table::num(r.tenants->latencyPercentileUs(ti, 0.50)),
                      Table::num(r.tenants->latencyPercentileUs(ti, 0.99)),
                      Table::num(r.tenants->slowdownPercentile(ti, 0.99)),
                      std::to_string(h.issued), std::to_string(h.won)});
        }
        std::printf("%s\n", t.format().c_str());

        const ServingStats& s = r.serving;
        std::printf(
            "logical RPCs: %llu issued, %llu completed in window, "
            "keptUp=%s\n",
            static_cast<unsigned long long>(s.logicalIssued),
            static_cast<unsigned long long>(r.completed),
            r.keptUp ? "yes" : "no");
        std::printf(
            "calls: %llu issued (%llu hedges), %llu responses consumed, "
            "%llu retries\n",
            static_cast<unsigned long long>(s.callsIssued),
            static_cast<unsigned long long>(s.hedgesIssued),
            static_cast<unsigned long long>(s.responsesConsumed),
            static_cast<unsigned long long>(r.retries));
        std::printf(
            "hedges: %llu issued = %llu won + %llu cancelled + %llu "
            "failed; primaries cancelled: %llu\n",
            static_cast<unsigned long long>(s.hedgesIssued),
            static_cast<unsigned long long>(s.hedgesWon),
            static_cast<unsigned long long>(s.hedgesCancelled),
            static_cast<unsigned long long>(s.hedgesFailed),
            static_cast<unsigned long long>(s.primariesCancelled));
        std::printf(
            "bytes: %lld issued = %lld consumed + %lld refunded + %lld "
            "unresolved\n",
            static_cast<long long>(s.issuedBytes),
            static_cast<long long>(s.consumedBytes),
            static_cast<long long>(s.refundedBytes),
            static_cast<long long>(s.unresolvedBytes));
        return 0;
    }

    const SizeDistribution& dist = workload(cfg.traffic.workload);
    // Trace replay and closed loop ignore --load (the schedule or the
    // window sets the rate itself).
    std::string loadStr = "load n/a (trace-driven)";
    if (cfg.traffic.scenario.kind == TrafficPatternKind::ClosedLoop) {
        loadStr = "load n/a (closed loop, W=";
        loadStr += std::to_string(cfg.traffic.scenario.closedLoopWindow);
        loadStr += ')';
    } else if (dagMode) {
        char dagStr[96];
        std::snprintf(dagStr, sizeof(dagStr),
                      "load n/a (dag, fanout %d depth %d, W=%d)",
                      cfg.traffic.scenario.dag.fanout,
                      cfg.traffic.scenario.dag.depth,
                      cfg.traffic.scenario.dag.window);
        loadStr = dagStr;
    } else if (cfg.traffic.scenario.kind != TrafficPatternKind::TraceReplay) {
        loadStr = "load ";
        loadStr += std::to_string(static_cast<int>(100 * cfg.traffic.load));
        loadStr += '%';
    }
    std::string patternStr = patternName(cfg.traffic.scenario.kind);
    if (cfg.traffic.scenario.ecmpUplinks) patternStr += "+ecmp";
    if (cfg.fluidThresholdBytes >= 0) {
        patternStr += "+fluid:" + std::to_string(cfg.fluidThresholdBytes);
    }
    for (const FaultSpec& fault : cfg.traffic.scenario.faults) {
        patternStr += "+fault:" + faultSpecToString(fault);
    }
    if (cfg.traffic.scenario.onOff.enabled) {
        char onOffStr[80];
        std::snprintf(onOffStr, sizeof(onOffStr),
                      "+on-off(%s %.0f/%.0f us)",
                      onOffDistName(cfg.traffic.scenario.onOff.dist),
                      toMicros(cfg.traffic.scenario.onOff.onMean),
                      toMicros(cfg.traffic.scenario.onOff.offMean));
        patternStr += onOffStr;
    }
    std::printf(
        "%s on %s, %s, pattern %s, %s, window %.0f ms, seed %llu\n\n",
        protocolName(cfg.proto.kind), topologySummary(cfg.net).c_str(),
        dist.name().c_str(), patternStr.c_str(),
        loadStr.c_str(), toSeconds(cfg.traffic.stop) * 1e3,
        static_cast<unsigned long long>(cfg.traffic.seed));

    ExperimentResult r = runExperiment(cfg);

    Table t({"size<=", "count", "p50 slowdown", "p99 slowdown"});
    for (const auto& row : r.slowdown->rows()) {
        t.addRow({Table::bytes(row.bucketMaxSize), std::to_string(row.count),
                  Table::num(row.median), Table::num(row.p99)});
    }
    std::printf("%s\n", t.format().c_str());

    std::printf("messages: %llu generated, %llu delivered, keptUp=%s\n",
                static_cast<unsigned long long>(r.generated),
                static_cast<unsigned long long>(r.delivered),
                r.keptUp ? "yes" : "no");
    std::printf("downlink utilization: %.1f%%   drops: %llu   trims: %llu\n",
                100 * r.downlinkUtilization,
                static_cast<unsigned long long>(r.switchDrops),
                static_cast<unsigned long long>(r.switchTrims));
    if (cfg.measureWastedBandwidth) {
        std::printf("wasted receiver bandwidth: %.1f%%\n",
                    100 * r.wastedBandwidth);
    }
    std::printf("queues (mean/max KB): TOR->host %.1f/%.0f, core %.1f/%.0f\n",
                r.torDown.meanBytes / 1e3,
                static_cast<double>(r.torDown.maxBytes) / 1e3,
                r.torUp.meanBytes / 1e3,
                static_cast<double>(r.torUp.maxBytes) / 1e3);
    if (r.coreSwitches > 0) {
        std::printf(
            "core tier queues (mean/max KB): aggr->core %.1f/%.0f, "
            "core->aggr %.1f/%.0f\n",
            r.aggrUp.meanBytes / 1e3,
            static_cast<double>(r.aggrUp.maxBytes) / 1e3,
            r.coreDown.meanBytes / 1e3,
            static_cast<double>(r.coreDown.maxBytes) / 1e3);
        std::printf("link busy fraction: TOR->aggr %.1f%%, aggr->core %.1f%%\n",
                    100 * r.aggrLinkUtilization, 100 * r.coreLinkUtilization);
    }
    std::printf("priority usage (%% of downlink): ");
    for (int p = 0; p < kPriorityLevels; p++) {
        std::printf("P%d=%.1f ", p, 100 * r.prioUsage[p]);
    }
    std::printf("\n");
    if (r.fluid) {
        const FluidStats& fl = *r.fluid;
        std::printf(
            "fluid regime (>= %lld bytes): %llu flows (%llu delivered), "
            "%.1f MB wire, peak %llu concurrent, %llu rate solves\n",
            static_cast<long long>(fl.thresholdBytes),
            static_cast<unsigned long long>(fl.flows),
            static_cast<unsigned long long>(fl.delivered),
            static_cast<double>(fl.wireBytes) / 1e6,
            static_cast<unsigned long long>(fl.maxConcurrent),
            static_cast<unsigned long long>(fl.solves));
        if (fl.delivered > 0) {
            std::printf(
                "  fluid slowdown: p50 %.2f, p99 %.2f, mean %.2f\n",
                fl.slowP50, fl.slowP99, fl.slowMean);
        }
    }
    if (r.faults) {
        const FaultStats& f = *r.faults;
        std::printf(
            "faults: %llu flaps, %llu kills, %llu degrades scheduled\n",
            static_cast<unsigned long long>(f.linkDownEvents),
            static_cast<unsigned long long>(f.switchKills),
            static_cast<unsigned long long>(f.degradeEvents));
        std::printf(
            "  fault drops: %llu on-wire, %llu degraded-loss, %llu "
            "dead-switch ingress, %llu flushed at death\n",
            static_cast<unsigned long long>(f.wireDrops),
            static_cast<unsigned long long>(f.probDrops),
            static_cast<unsigned long long>(f.deadIngressDrops),
            static_cast<unsigned long long>(f.flushDrops));
    }
    if (r.closedLoop) {
        const ClosedLoopTracker& cl = *r.closedLoop;
        std::printf(
            "closed loop: %llu ops in window (%.0f ops/s, %.2f Gbps), "
            "peak outstanding %d/%d\n",
            static_cast<unsigned long long>(cl.totalCompleted()),
            cl.aggregateOpsPerSec(), cl.aggregateGbps(), r.maxOutstanding,
            cfg.traffic.scenario.closedLoopWindow);
        std::printf(
            "  per-client ops: min %llu / max %llu;   latency (us): "
            "p50 %.1f, p99 %.1f, mean %.1f\n",
            static_cast<unsigned long long>(cl.minClientCompleted()),
            static_cast<unsigned long long>(cl.maxClientCompleted()),
            cl.latencyPercentileUs(0.50), cl.latencyPercentileUs(0.99),
            cl.latencyMeanUs());
    }
    if (r.dag) {
        const DagTracker& dag = *r.dag;
        std::printf(
            "dag: %llu trees in window (%.0f trees/s, %.2f Gbps, %llu "
            "nodes), peak outstanding %d/%d\n",
            static_cast<unsigned long long>(dag.trees()), dag.treesPerSec(),
            dag.aggregateGbps(),
            static_cast<unsigned long long>(dag.totalNodes()),
            r.maxOutstanding, cfg.traffic.scenario.dag.window);
        std::printf(
            "  tree completion (us): p50 %.1f, p99 %.1f, mean %.1f;   "
            "tree slowdown: p50 %.2f, p99 %.2f\n",
            dag.completionPercentileUs(0.50), dag.completionPercentileUs(0.99),
            dag.completionMeanUs(), dag.slowdownPercentile(0.50),
            dag.slowdownPercentile(0.99));
        std::printf(
            "  trees per root: min %llu / max %llu\n",
            static_cast<unsigned long long>(dag.minRootTrees()),
            static_cast<unsigned long long>(dag.maxRootTrees()));
    }
    return 0;
}
