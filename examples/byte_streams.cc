// Byte streams over Homa vs. the TCP way.
//
// §3.1 of the paper: traditional socket applications can run over Homa via
// a thin stream layer. The killer difference from TCP: streams between the
// same pair of hosts are independent — a bulk transfer does not delay a
// small request. This example times exactly that scenario on Homa streams
// and on the TCP-like streaming transport.
#include <cstdio>

#include "baselines/streaming.h"
#include "core/stream_adapter.h"
#include "workload/workloads.h"

using namespace homa;

namespace {

// Scenario: host 0 sends a 5 MB bulk stream to host 1, and 10 us later a
// 300-byte "request" on a second stream to the same host. Report when
// each completes.
struct Result {
    double bulkMs;
    double requestUs;
};

Result overHoma() {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg,
                HomaTransport::factory({}, cfg, &workload(WorkloadId::W4)));
    StreamMux tx(net, 0), rx(net, 1);
    const uint32_t bulk = tx.openStream(1);
    const uint32_t request = tx.openStream(1);

    Time bulkDone = 0, requestDone = 0;
    rx.setReadCallback([&](HostId, uint32_t stream, const std::vector<uint8_t>&) {
        if (stream == bulk && rx.bytesRead(0, bulk) == 5'000'000) {
            bulkDone = net.loop().now();
        }
        if (stream == request && rx.bytesRead(0, request) == 300) {
            requestDone = net.loop().now();
        }
    });
    tx.write(bulk, 5'000'000);
    net.loop().at(microseconds(10), [&] { tx.write(request, 300); });
    net.loop().run();
    return {toSeconds(bulkDone) * 1e3,
            toMicros(requestDone - microseconds(10))};
}

Result overTcpLikeStream() {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, StreamingTransport::factory({}));  // one conn per peer
    Time bulkDone = 0, requestDone = 0;
    Time requestStart = microseconds(10);
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo& info) {
        if (m.length == 5'000'000) bulkDone = info.completed;
        if (m.length == 300) requestDone = info.completed;
    });
    Message bulk;
    bulk.id = net.nextMsgId();
    bulk.src = 0;
    bulk.dst = 1;
    bulk.length = 5'000'000;
    net.sendMessage(bulk);
    net.loop().at(requestStart, [&] {
        Message req;
        req.id = net.nextMsgId();
        req.src = 0;
        req.dst = 1;
        req.length = 300;
        net.sendMessage(req);
    });
    net.loop().run();
    return {toSeconds(bulkDone) * 1e3, toMicros(requestDone - requestStart)};
}

}  // namespace

int main() {
    std::printf("5 MB bulk stream + 300 B request to the same host:\n\n");
    Result homa = overHoma();
    Result tcp = overTcpLikeStream();
    std::printf("%-22s %-14s %s\n", "", "bulk done", "request latency");
    std::printf("%-22s %.2f ms        %.1f us\n", "Homa streams", homa.bulkMs,
                homa.requestUs);
    std::printf("%-22s %.2f ms        %.1f us   <- head-of-line blocked\n",
                "TCP-like (one conn)", tcp.bulkMs, tcp.requestUs);
    std::printf(
        "\nThe bulk transfer costs the same either way; the request pays\n"
        "~the full bulk serialization time on a shared TCP connection and\n"
        "almost nothing on an independent Homa stream (§3.1, Figure 8).\n");
    return 0;
}
